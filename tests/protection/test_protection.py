"""Knapsack, duplication pass, and protection evaluation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.interp import ExecutionEngine
from repro.ir.instructions import Detect
from repro.protection import (
    KnapsackItem,
    clone_module,
    duplicable_iids,
    duplicate_instructions,
    evaluate_protection,
    full_duplication_cost,
    greedy_select,
    knapsack_select,
    select_instructions,
)
from tests.conftest import cached_module, cached_profile


class TestKnapsack:
    def test_prefers_high_profit(self):
        items = [
            KnapsackItem(1, cost=10, profit=1.0),
            KnapsackItem(2, cost=10, profit=5.0),
            KnapsackItem(3, cost=10, profit=3.0),
        ]
        assert knapsack_select(items, 20) == {2, 3}

    def test_respects_capacity(self):
        items = [KnapsackItem(i, cost=7, profit=1.0) for i in range(10)]
        chosen = knapsack_select(items, 21)
        assert len(chosen) == 3

    def test_zero_capacity(self):
        items = [KnapsackItem(1, cost=5, profit=1.0)]
        assert knapsack_select(items, 0) == set()

    def test_zero_cost_items_always_chosen(self):
        items = [
            KnapsackItem(1, cost=0, profit=0.1),
            KnapsackItem(2, cost=100, profit=9.0),
        ]
        assert 1 in knapsack_select(items, 10)

    def test_classic_instance(self):
        # Weights/profits where greedy-by-density fails but DP succeeds.
        items = [
            KnapsackItem(1, cost=10, profit=60.0),   # density 6
            KnapsackItem(2, cost=20, profit=100.0),  # density 5
            KnapsackItem(3, cost=30, profit=120.0),  # density 4
        ]
        chosen = knapsack_select(items, 50)
        assert chosen == {2, 3}  # total profit 220 beats greedy's 160

    @given(st.lists(
        st.tuples(st.integers(1, 50), st.floats(0.0, 10.0)),
        min_size=1, max_size=25,
    ), st.integers(1, 200))
    @settings(max_examples=50, deadline=None)
    def test_never_exceeds_capacity_and_beats_greedy(self, raw, capacity):
        items = [
            KnapsackItem(i, cost=c, profit=p)
            for i, (c, p) in enumerate(raw)
        ]
        chosen = knapsack_select(items, capacity)
        assert sum(i.cost for i in items if i.key in chosen) <= capacity
        dp_profit = sum(i.profit for i in items if i.key in chosen)
        greedy = greedy_select(items, capacity)
        greedy_profit = sum(i.profit for i in items if i.key in greedy)
        assert dp_profit >= greedy_profit - 1e-9


class TestDuplication:
    def test_clone_preserves_behavior(self, accumulator_module):
        clone = clone_module(accumulator_module)
        assert (
            ExecutionEngine(clone).golden().outputs
            == ExecutionEngine(accumulator_module).golden().outputs
        )
        assert clone is not accumulator_module

    def test_duplication_preserves_output(self, accumulator_module):
        iids = duplicable_iids(accumulator_module)[:10]
        protected, report = duplicate_instructions(accumulator_module, iids)
        assert (
            ExecutionEngine(protected).golden().outputs
            == ExecutionEngine(accumulator_module).golden().outputs
        )
        assert report.duplicated == len(iids)

    def test_full_duplication_of_benchmark(self):
        module = cached_module("pathfinder")
        iids = duplicable_iids(module)
        protected, report = duplicate_instructions(module, iids)
        assert (
            ExecutionEngine(protected).golden().outputs
            == ExecutionEngine(module).golden().outputs
        )
        assert report.duplicated == len(iids)

    def test_checks_merged_on_chains(self, accumulator_module):
        iids = duplicable_iids(accumulator_module)
        _protected, report = duplicate_instructions(accumulator_module, iids)
        # Chained duplicable instructions share checks.
        assert report.checks_merged > 0
        assert report.checks_inserted + report.checks_merged == len(iids)

    def test_overhead_grows_with_protection(self):
        module = cached_module("pathfinder")
        base = ExecutionEngine(module).golden().dynamic_count
        iids = duplicable_iids(module)
        half, _ = duplicate_instructions(module, iids[: len(iids) // 2])
        full, _ = duplicate_instructions(module, iids)
        half_count = ExecutionEngine(half).golden().dynamic_count
        full_count = ExecutionEngine(full).golden().dynamic_count
        assert base < half_count < full_count

    def test_rejects_unduplicable(self, accumulator_module):
        store_iid = next(
            i.iid for i in accumulator_module.instructions()
            if i.opcode == "store"
        )
        with pytest.raises(ValueError):
            duplicate_instructions(accumulator_module, [store_iid])

    def test_detection_catches_injected_fault(self):
        """Inject into a protected instruction's destination register:
        the check must fire (Detected, not SDC)."""
        from repro.interp.engine import Injection

        module = cached_module("pathfinder")
        profile, _ = cached_profile("pathfinder")
        hot = max(
            (iid for iid in duplicable_iids(module)
             if profile.count(iid) > 0),
            key=profile.count,
        )
        protected, _report = duplicate_instructions(module, [hot])
        engine = ExecutionEngine(protected)
        engine.golden()  # warm the reference run used for classification
        # Locate the protected original in the new module: it is the
        # operand of the single Detect instruction.
        detect = next(
            i for i in protected.instructions() if isinstance(i, Detect)
        )
        original = detect.original
        outcomes = set()
        for bit in range(0, original.type.bits, 7):
            result = engine.run(Injection(original.iid, 1, bit))
            outcomes.add(result.outcome)
        assert outcomes <= {"detected", "crash"}
        assert "detected" in outcomes


class TestEvaluation:
    def test_protection_reduces_sdc(self):
        module = cached_module("pathfinder")
        profile, _ = cached_profile("pathfinder")
        outcome = evaluate_protection(
            module, profile, "trident", 2 / 3, fi_samples=300, seed=5
        )
        assert outcome.protected_sdc < outcome.baseline_sdc
        assert outcome.sdc_reduction > 0.3
        assert outcome.protected.detected_probability > 0.0

    def test_bigger_budget_more_protection(self):
        module = cached_module("pathfinder")
        profile, _ = cached_profile("pathfinder")
        small = select_instructions(module, profile, "trident", 1 / 3)
        large = select_instructions(module, profile, "trident", 2 / 3)
        assert len(large) >= len(small)

    def test_full_duplication_cost_positive(self):
        module = cached_module("pathfinder")
        profile, _ = cached_profile("pathfinder")
        assert full_duplication_cost(module, profile) > 0
