"""Crash-probability prediction (extension beyond the paper)."""

import pytest

from repro.core import Trident
from repro.fi import CRASHED, FaultInjector
from tests.conftest import cached_module, cached_profile


@pytest.fixture(scope="module")
def setup():
    module = cached_module("nw")
    profile, _ = cached_profile("nw")
    return module, profile, Trident(module, profile)


class TestCrashPrediction:
    def test_in_unit_interval(self, setup):
        _module, _profile, model = setup
        for iid in model.eligible:
            assert 0.0 <= model.instruction_crash(iid) <= 1.0

    def test_address_chains_crash_prone(self, setup):
        """Instructions feeding addresses (gep indexes) must have much
        higher predicted crash probability than pure value chains."""
        module, profile, model = setup
        gep_feeders = []
        other = []
        for iid in model.eligible:
            inst = module.instruction(iid)
            feeds_gep = any(u.opcode == "gep" for u in inst.users)
            (gep_feeders if feeds_gep else other).append(
                model.instruction_crash(iid)
            )
        assert gep_feeders and other
        assert (sum(gep_feeders) / len(gep_feeders)
                > sum(other) / len(other))

    def test_overall_close_to_fi(self, setup):
        module, _profile, model = setup
        campaign = FaultInjector(module).campaign(400, seed=3)
        predicted = model.overall_crash(samples=400, seed=1)
        assert predicted == pytest.approx(
            campaign.crash_probability, abs=0.15
        )

    def test_ranks_instructions_like_fi(self, setup):
        """Spearman-style check: instructions FI crashes often on should
        get higher predictions than ones it never crashes on."""
        module, _profile, model = setup
        injector = FaultInjector(module)
        iids = model.eligible[:40]
        campaigns = injector.per_instruction_campaign(iids, 30, seed=9)
        crashy = [i for i in iids
                  if campaigns[i].probability(CRASHED) > 0.5]
        calm = [i for i in iids
                if campaigns[i].probability(CRASHED) < 0.1]
        if not crashy or not calm:
            pytest.skip("benchmark lacks contrast at this sample size")
        mean_crashy = sum(model.instruction_crash(i) for i in crashy) / len(crashy)
        mean_calm = sum(model.instruction_crash(i) for i in calm) / len(calm)
        assert mean_crashy > mean_calm

    def test_resultless_is_zero(self, setup):
        module, _profile, model = setup
        store_iid = next(
            inst.iid for inst in module.instructions()
            if inst.opcode == "store"
        )
        assert model.instruction_crash(store_iid) == 0.0
