"""The normalized ``REPRO_*`` environment-knob readers.

Every subsystem parses its knobs through :mod:`repro.core.env`, so
these tests are the single lock on the accepted spellings: flags take
``1/true/yes/on`` / ``0/false/no/off``, numbers parse strictly, and
garbage raises an :class:`EnvError` that names the variable, the value
and what was expected — never a silent default.
"""

from __future__ import annotations

import pytest

from repro.core.env import (
    EnvError,
    env_choice,
    env_flag,
    env_float,
    env_int,
    env_str,
)

VAR = "REPRO_TEST_KNOB"


@pytest.fixture(autouse=True)
def _clean(monkeypatch):
    monkeypatch.delenv(VAR, raising=False)


def set_var(monkeypatch, value):
    monkeypatch.setenv(VAR, value)


class TestEnvStr:
    def test_unset_returns_default(self):
        assert env_str(VAR) is None
        assert env_str(VAR, "fallback") == "fallback"

    def test_empty_and_blank_count_as_unset(self, monkeypatch):
        for raw in ("", "   "):
            set_var(monkeypatch, raw)
            assert env_str(VAR, "fallback") == "fallback"

    def test_value_is_stripped(self, monkeypatch):
        set_var(monkeypatch, "  value  ")
        assert env_str(VAR) == "value"


class TestEnvFlag:
    @pytest.mark.parametrize("raw", ["1", "true", "YES", " On "])
    def test_truthy_spellings(self, monkeypatch, raw):
        set_var(monkeypatch, raw)
        assert env_flag(VAR) is True

    @pytest.mark.parametrize("raw", ["0", "false", "NO", " off "])
    def test_falsy_spellings(self, monkeypatch, raw):
        set_var(monkeypatch, raw)
        assert env_flag(VAR, default=True) is False

    def test_unset_keeps_default(self):
        assert env_flag(VAR, default=True) is True
        assert env_flag(VAR, default=False) is False

    def test_garbage_is_a_clear_error(self, monkeypatch):
        set_var(monkeypatch, "maybe")
        with pytest.raises(EnvError) as exc:
            env_flag(VAR)
        assert VAR in str(exc.value)
        assert "maybe" in str(exc.value)


class TestEnvInt:
    def test_parses_and_defaults(self, monkeypatch):
        assert env_int(VAR, 7) == 7
        set_var(monkeypatch, "42")
        assert env_int(VAR, 7) == 42

    def test_garbage_names_the_variable(self, monkeypatch):
        set_var(monkeypatch, "four")
        with pytest.raises(EnvError) as exc:
            env_int(VAR, 1)
        assert exc.value.name == VAR
        assert exc.value.value == "four"

    def test_minimum_enforced(self, monkeypatch):
        set_var(monkeypatch, "0")
        with pytest.raises(EnvError):
            env_int(VAR, 1, minimum=1)
        assert env_int(VAR, 1, minimum=0) == 0


class TestEnvFloat:
    def test_parses_and_defaults(self, monkeypatch):
        assert env_float(VAR) is None
        assert env_float(VAR, 0.5) == 0.5
        set_var(monkeypatch, "0.01")
        assert env_float(VAR) == 0.01

    def test_garbage_rejected(self, monkeypatch):
        set_var(monkeypatch, "one percent")
        with pytest.raises(EnvError):
            env_float(VAR)

    def test_minimum_enforced(self, monkeypatch):
        set_var(monkeypatch, "-0.5")
        with pytest.raises(EnvError):
            env_float(VAR, minimum=0.0)


class TestEnvChoice:
    CHOICES = ("codegen", "closure", "batch")

    def test_accepts_declared_choices(self, monkeypatch):
        assert env_choice(VAR, "codegen", self.CHOICES) == "codegen"
        set_var(monkeypatch, "batch")
        assert env_choice(VAR, None, self.CHOICES) == "batch"

    def test_rejects_outsiders_listing_alternatives(self, monkeypatch):
        set_var(monkeypatch, "turbo")
        with pytest.raises(EnvError) as exc:
            env_choice(VAR, None, self.CHOICES)
        for choice in self.CHOICES:
            assert choice in str(exc.value)


class TestCompatibility:
    def test_enverror_is_a_valueerror(self):
        # Callers that guarded with ``except ValueError`` keep working.
        assert issubclass(EnvError, ValueError)
