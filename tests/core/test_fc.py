"""fc — the paper's worked NLT (Fig. 3a, Pc=0.63) and LT (Fig. 3b,
Pc=0.62) examples, reproduced on hand-built CFGs with fabricated
branch profiles."""

import pytest

from repro.core import ControlFlowSubModel, trident_config
from repro.ir import I32, Function, IRBuilder, Module, const_int
from repro.ir.instructions import Branch, Store
from repro.profiling import ProgramProfile


def build_fig3a() -> tuple[Module, Branch, Store, ProgramProfile]:
    """Fig. 3a: NLT branch; store on path bb0-bb1-bb3-bb4.

    Branch probabilities: bb0 T=0.2/F=0.8; bb1 0.9 towards bb3;
    bb3 0.7 towards bb4.  Expected Pc = Pe/Pd = (0.8*0.9*0.7)/0.8 = 0.63.
    """
    module = Module("fig3a")
    fn = Function("main")
    bb0 = fn.add_block("bb0")
    bb1 = fn.add_block("bb1")
    bb2 = fn.add_block("bb2")
    bb3 = fn.add_block("bb3")
    bb4 = fn.add_block("bb4")
    bb5 = fn.add_block("bb5")
    module.add_function(fn)

    b0 = IRBuilder(fn, bb0)
    slot = b0.alloca(I32, 1)
    cmp0 = b0.icmp("sgt", const_int(1), const_int(0))
    branch0 = b0.cond_br(cmp0, bb2, bb1)  # T -> bb2 (0.2), F -> bb1 (0.8)

    b1 = IRBuilder(fn, bb1)
    cmp1 = b1.icmp("sgt", const_int(1), const_int(0))
    b1.cond_br(cmp1, bb3, bb5)  # 0.9 -> bb3

    b2 = IRBuilder(fn, bb2)
    b2.br(bb5)

    b3 = IRBuilder(fn, bb3)
    cmp3 = b3.icmp("sgt", const_int(1), const_int(0))
    b3.cond_br(cmp3, bb4, bb5)  # 0.7 -> bb4

    b4 = IRBuilder(fn, bb4)
    store = b4.store(const_int(7), slot)
    b4.br(bb5)

    b5 = IRBuilder(fn, bb5)
    b5.ret(None)
    module.finalize()

    profile = ProgramProfile()
    base = 1000
    profile.inst_counts = {
        slot.iid: 1, cmp0.iid: base, branch0.iid: base,
        cmp1.iid: 800, bb1.instructions[-1].iid: 800,
        cmp3.iid: 720, bb3.instructions[-1].iid: 720,
        store.iid: 504,
    }
    profile.branch_counts = {
        branch0.iid: [800, 200],                  # [false, true]
        bb1.instructions[-1].iid: [80, 720],
        bb3.instructions[-1].iid: [216, 504],
    }
    return module, branch0, store, profile


def build_fig3b() -> tuple[Module, Branch, Store, ProgramProfile]:
    """Fig. 3b: LT branch at the loop header.

    Back-edge probability 0.99; store path inside the loop 0.9 * 0.7.
    Expected Pc = 0.99 * 0.9 * 0.7 = 0.6237.
    """
    module = Module("fig3b")
    fn = Function("main")
    bb0 = fn.add_block("bb0")
    bb1 = fn.add_block("bb1")
    bb2 = fn.add_block("bb2")
    bb3 = fn.add_block("bb3")
    bb4 = fn.add_block("bb4")
    bb5 = fn.add_block("bb5")
    module.add_function(fn)

    b0 = IRBuilder(fn, bb0)
    slot = b0.alloca(I32, 1)
    cmp0 = b0.icmp("slt", const_int(0), const_int(1))
    branch0 = b0.cond_br(cmp0, bb1, bb5)  # T (0.99) continues the loop

    b1 = IRBuilder(fn, bb1)
    cmp1 = b1.icmp("slt", const_int(0), const_int(1))
    b1.cond_br(cmp1, bb2, bb0)  # 0.9 -> bb2, 0.1 back to header

    b2 = IRBuilder(fn, bb2)
    cmp2 = b2.icmp("slt", const_int(0), const_int(1))
    b2.cond_br(cmp2, bb4, bb3)  # 0.7 -> bb4 (store)

    b3 = IRBuilder(fn, bb3)
    b3.br(bb0)

    b4 = IRBuilder(fn, bb4)
    store = b4.store(const_int(7), slot)
    b4.br(bb0)

    b5 = IRBuilder(fn, bb5)
    b5.ret(None)
    module.finalize()

    profile = ProgramProfile()
    base = 10000
    in_loop = int(base * 0.99)
    to_bb2 = int(in_loop * 0.9)
    to_store = int(to_bb2 * 0.7)
    profile.inst_counts = {
        slot.iid: 1, cmp0.iid: base, branch0.iid: base,
        cmp1.iid: in_loop, bb1.instructions[-1].iid: in_loop,
        cmp2.iid: to_bb2, bb2.instructions[-1].iid: to_bb2,
        store.iid: to_store,
    }
    profile.branch_counts = {
        branch0.iid: [base - in_loop, in_loop],
        bb1.instructions[-1].iid: [in_loop - to_bb2, to_bb2],
        bb2.instructions[-1].iid: [to_bb2 - to_store, to_store],
    }
    return module, branch0, store, profile


class TestNlt:
    def test_classification(self):
        module, branch, _store, profile = build_fig3a()
        fc = ControlFlowSubModel(module, profile, trident_config())
        assert fc.classify(branch) == "NLT"

    def test_paper_value(self):
        module, branch, store, profile = build_fig3a()
        fc = ControlFlowSubModel(module, profile, trident_config())
        corrupted = dict(
            (s.iid, pc) for s, pc in fc.corrupted_stores(branch)
        )
        assert corrupted[store.iid] == pytest.approx(0.63, abs=0.005)

    def test_immediately_dominated_store_pc_is_one(self):
        # Fig. 2a shape: the branch directly guards the store block.
        module = Module("direct")
        fn = Function("main")
        bb0 = fn.add_block("bb0")
        then = fn.add_block("then")
        done = fn.add_block("done")
        module.add_function(fn)
        b0 = IRBuilder(fn, bb0)
        slot = b0.alloca(I32, 1)
        cmp = b0.icmp("sgt", const_int(1), const_int(0))
        branch = b0.cond_br(cmp, then, done)
        bt = IRBuilder(fn, then)
        store = bt.store(const_int(1), slot)
        bt.br(done)
        IRBuilder(fn, done).ret(None)
        module.finalize()

        profile = ProgramProfile()
        profile.inst_counts = {
            slot.iid: 1, cmp.iid: 100, branch.iid: 100, store.iid: 40,
        }
        profile.branch_counts = {branch.iid: [60, 40]}
        fc = ControlFlowSubModel(module, profile, trident_config())
        corrupted = dict(
            (s.iid, pc) for s, pc in fc.corrupted_stores(branch)
        )
        assert corrupted[store.iid] == pytest.approx(1.0)


class TestLt:
    def test_classification(self):
        module, branch, _store, profile = build_fig3b()
        fc = ControlFlowSubModel(module, profile, trident_config())
        assert fc.classify(branch) == "LT"

    def test_paper_value(self):
        module, branch, store, profile = build_fig3b()
        fc = ControlFlowSubModel(module, profile, trident_config())
        corrupted = dict(
            (s.iid, pc) for s, pc in fc.corrupted_stores(branch)
        )
        assert corrupted[store.iid] == pytest.approx(0.6237, abs=0.005)


class TestEdgeCases:
    def test_unconditional_branch_returns_nothing(self):
        module, branch, _store, profile = build_fig3a()
        fc = ControlFlowSubModel(module, profile, trident_config())
        unconditional = next(
            block.terminator
            for block in module.main.blocks
            if isinstance(block.terminator, Branch)
            and not block.terminator.is_conditional
        )
        assert fc.corrupted_stores(unconditional) == []

    def test_never_executed_branch_returns_nothing(self):
        module, branch, _store, profile = build_fig3a()
        profile.inst_counts[branch.iid] = 0
        fc = ControlFlowSubModel(module, profile, trident_config())
        assert fc.corrupted_stores(branch) == []

    def test_results_cached(self):
        module, branch, _store, profile = build_fig3a()
        fc = ControlFlowSubModel(module, profile, trident_config())
        first = fc.corrupted_stores(branch)
        assert fc.corrupted_stores(branch) is first
