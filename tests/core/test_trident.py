"""The TRIDENT orchestrator: Algorithm 1 over real programs."""

import pytest

from repro.core import (
    Trident,
    build_all_models,
    build_model,
    fs_fc_config,
    fs_only_config,
    trident_config,
)
from repro.ir import F32, I32, FunctionBuilder, Module
from repro.profiling import ProfilingInterpreter
from tests.conftest import cached_module, cached_profile


@pytest.fixture(scope="module")
def pathfinder_model():
    module = cached_module("pathfinder")
    profile, _ = cached_profile("pathfinder")
    return Trident(module, profile)


class TestInstructionSdc:
    def test_probabilities_in_range(self, pathfinder_model):
        for iid in pathfinder_model.eligible:
            value = pathfinder_model.instruction_sdc(iid)
            assert 0.0 <= value <= 1.0

    def test_memoized(self, pathfinder_model):
        iid = pathfinder_model.eligible[0]
        first = pathfinder_model.instruction_sdc(iid)
        before = pathfinder_model.inference_seconds
        assert pathfinder_model.instruction_sdc(iid) == first
        # Cached: no measurable inference time added.
        assert pathfinder_model.inference_seconds == before

    def test_resultless_instruction_is_zero(self, pathfinder_model):
        store_iid = next(
            inst.iid for inst in pathfinder_model.module.instructions()
            if inst.opcode == "store"
        )
        assert pathfinder_model.instruction_sdc(store_iid) == 0.0

    def test_dead_value_is_zero(self):
        module = Module("dead")
        f = FunctionBuilder(module, "main")
        _unused = f.c(1) + 2
        f.out(f.c(0))
        f.done()
        module.finalize()
        model = Trident.build(module)
        add_iid = next(
            i.iid for i in module.instructions() if i.opcode == "binop"
        )
        assert model.instruction_sdc(add_iid) == 0.0

    def test_direct_output_is_certain(self):
        module = Module("direct")
        f = FunctionBuilder(module, "main")
        f.out(f.c(1) + 2)
        f.done()
        module.finalize()
        model = Trident.build(module)
        add_iid = next(
            i.iid for i in module.instructions() if i.opcode == "binop"
        )
        assert model.instruction_sdc(add_iid) == pytest.approx(1.0)

    def test_precision_masked_output(self):
        module = Module("masked")
        f = FunctionBuilder(module, "main")
        x = f.c(1.5, F32) * f.c(2.0, F32)
        f.out(x, precision=2)
        f.done()
        module.finalize()
        model = Trident.build(module)
        mul_iid = next(
            i.iid for i in module.instructions() if i.opcode == "binop"
        )
        # The 48.66% rule bounds a direct path to a %.2g output.
        assert model.instruction_sdc(mul_iid) == pytest.approx(0.4866,
                                                               abs=0.001)


class TestOverallSdc:
    def test_sampled_close_to_exact(self, pathfinder_model):
        sampled = pathfinder_model.overall_sdc(samples=4000, seed=1)
        exact = pathfinder_model.overall_sdc_exact()
        assert sampled == pytest.approx(exact, abs=0.05)

    def test_deterministic_per_seed(self, pathfinder_model):
        assert pathfinder_model.overall_sdc(
            samples=500, seed=9
        ) == pathfinder_model.overall_sdc(samples=500, seed=9)

    def test_in_unit_interval(self, benchmark_name):
        module = cached_module(benchmark_name)
        profile, _ = cached_profile(benchmark_name)
        model = Trident(module, profile)
        assert 0.0 <= model.overall_sdc(samples=200, seed=0) <= 1.0

    def test_sdc_map_covers_eligible(self, pathfinder_model):
        sdc_map = pathfinder_model.sdc_map()
        assert set(sdc_map) == set(pathfinder_model.eligible)


class TestModelVariants:
    def test_config_names(self):
        assert trident_config().name == "trident"
        assert fs_fc_config().name == "fs+fc"
        assert fs_only_config().name == "fs"

    def test_build_model_rejects_unknown(self, pathfinder_model):
        with pytest.raises(ValueError):
            build_model("bogus", pathfinder_model.module,
                        pathfinder_model.profile)

    def test_fs_fc_over_predicts_trident(self, benchmark_name):
        """Sec. V-B: fs+fc assumes store-hit = SDC, so its prediction
        must dominate full TRIDENT's on every benchmark."""
        module = cached_module(benchmark_name)
        profile, _ = cached_profile(benchmark_name)
        models = build_all_models(module, profile)
        trident_value = models["trident"].overall_sdc(samples=300, seed=2)
        fs_fc_value = models["fs+fc"].overall_sdc(samples=300, seed=2)
        assert fs_fc_value >= trident_value - 1e-9

    def test_fs_ignores_control_flow(self):
        """A value that only influences a branch: fs predicts zero,
        fs+fc and TRIDENT predict more."""
        module = Module("branch_only")
        f = FunctionBuilder(module, "main")
        arr = f.array("a", I32, 4)
        flag = f.local("flag", I32, init=3)

        def body(i):
            f.if_(flag.get() > 1, lambda: arr.__setitem__(i, i + 1))

        f.for_range(0, 4, body)
        f.for_range(0, 4, lambda i: f.out(arr[i]), name="o")
        f.done()
        module.finalize()
        profile, _ = ProfilingInterpreter(module).run()
        flag_load = next(
            i.iid for i in module.instructions()
            if i.opcode == "load"
            and any(u.opcode == "icmp" for u in i.users)
        )
        fs_model = build_model("fs", module, profile)
        trident_model = build_model("trident", module, profile)
        assert fs_model.instruction_sdc(flag_load) == 0.0
        assert trident_model.instruction_sdc(flag_load) > 0.0

    def test_eligibility_matches_injector(self, benchmark_name):
        from repro.fi import FaultInjector

        module = cached_module(benchmark_name)
        profile, _ = cached_profile(benchmark_name)
        model = Trident(module, profile)
        injector = FaultInjector(module)
        assert model.eligible == injector.eligible_iids()
