"""Divergence weighting: post-dominating terminals vs guarded ones."""

import pytest

from repro.core.weighting import ExecutionWeigher
from repro.ir import I32, FunctionBuilder, Module
from repro.ir.instructions import BinOp, Output
from repro.profiling import ProfilingInterpreter


def build_module_with_loop_and_guard():
    """An accumulator loop feeding one final output, plus an if-guarded
    output inside the loop body."""
    module = Module("m")
    f = FunctionBuilder(module, "main")
    total = f.local("t", I32, init=0)

    def body(i):
        total.set(total.get() + i)
        # Guarded output: executes for 3 of 10 iterations.
        f.if_(i < 3, lambda: f.out(i + 100))

    f.for_range(0, 10, body)
    f.out(total.get())
    f.done()
    module.finalize()
    profile, _ = ProfilingInterpreter(module).run()
    return module, profile


class TestExecutionWeigher:
    def test_postdominating_output_weight_one(self):
        """The final output runs once but post-dominates the loop body:
        every body execution reaches it — weight must be 1, not 1/10."""
        module, profile = build_module_with_loop_and_guard()
        weigher = ExecutionWeigher(module, profile)
        add = next(
            i for i in module.instructions()
            if isinstance(i, BinOp) and i.op == "add"
            and profile.count(i.iid) == 10
        )
        final_output = next(
            i for i in module.instructions()
            if isinstance(i, Output) and profile.count(i.iid) == 1
        )
        assert weigher.weight(add, final_output) == 1.0

    def test_guarded_output_weight_is_ratio(self):
        """The in-loop guarded output does not post-dominate the adds:
        the profiled count ratio (3/10) applies — the Fig. 4 weighting."""
        module, profile = build_module_with_loop_and_guard()
        weigher = ExecutionWeigher(module, profile)
        add = next(
            i for i in module.instructions()
            if isinstance(i, BinOp) and i.op == "add"
            and profile.count(i.iid) == 10
        )
        guarded_output = next(
            i for i in module.instructions()
            if isinstance(i, Output) and profile.count(i.iid) == 3
        )
        assert weigher.weight(add, guarded_output) == pytest.approx(0.3)

    def test_cross_function_falls_back_to_ratio(self):
        module = Module("m")
        helper = FunctionBuilder(module, "emit", [I32], ["x"])
        helper.out(helper.arg(0))
        helper.done()
        f = FunctionBuilder(module, "main")
        value = f.c(1) + 2
        f.if_(f.c(1) < 2, lambda: f.call("emit", [value]))
        f.done()
        module.finalize()
        profile, _ = ProfilingInterpreter(module).run()
        weigher = ExecutionWeigher(module, profile)
        add = next(
            i for i in module.instructions()
            if isinstance(i, BinOp) and i.op == "add"
        )
        output = next(
            i for i in module.instructions() if isinstance(i, Output)
        )
        weight = weigher.weight(add, output)
        assert weight == profile.execution_probability(output.iid, add.iid)

    def test_postdominator_cache(self):
        module, profile = build_module_with_loop_and_guard()
        weigher = ExecutionWeigher(module, profile)
        add = next(
            i for i in module.instructions() if isinstance(i, BinOp)
        )
        output = next(
            i for i in module.instructions() if isinstance(i, Output)
        )
        weigher.weight(add, output)
        assert ("postdominators", "main") in weigher._analyses._results
