"""fs and the forward propagator: the Fig. 2b aggregation and the
event-merged DAG semantics."""

import pytest

from repro.analysis import paths_from_instruction
from repro.core import StaticSubModel, TupleDeriver, trident_config
from repro.core.propagation import (
    EV_BRANCH,
    EV_OUTPUT,
    EV_STORE,
    ForwardPropagator,
)
from repro.ir import I32, FunctionBuilder, Module
from repro.ir.instructions import BinOp, Load
from repro.profiling import ProfilingInterpreter


def build_fig2b() -> Module:
    """load -> add 1 -> cmp sgt 0 -> branch, on a counter from -N to 0."""
    module = Module("fig2b")
    f = FunctionBuilder(module, "main")
    counter = f.local("c", I32, init=-40)

    def body():
        counter.set(counter.get() + 1)

    f.while_(lambda: counter.get() < 0, body)
    f.out(counter.get())
    f.done()
    return module.finalize()


@pytest.fixture(scope="module")
def fig2b():
    module = build_fig2b()
    profile, _ = ProfilingInterpreter(module).run()
    config = trident_config()
    tuples = TupleDeriver(profile, config)
    propagator = ForwardPropagator(module, tuples, config)
    return module, profile, tuples, propagator


def _cond_load(module, profile):
    """The load in the loop-condition block (feeds icmp -> branch)."""
    return next(
        inst for inst in module.instructions()
        if isinstance(inst, Load) and profile.count(inst.iid) > 0
        and any(u.opcode == "icmp" for u in inst.users)
    )


class TestFig2bAggregation:
    def test_sequence_propagation_is_small(self, fig2b):
        """The paper's 1 * 1 * 0.03 = 3% aggregation: a fault in the
        counter load reaches the branch with low probability because
        only sign-adjacent bits flip the comparison."""
        module, profile, tuples, propagator = fig2b
        load = _cond_load(module, profile)
        events = propagator.propagate(load).events
        branch_events = [e for e in events if e.kind == EV_BRANCH]
        assert branch_events
        # The counter values are spread over -40..0, so the decisive-bit
        # fraction varies per sample; it must stay well under 30%.
        assert 0.0 < branch_events[0].probability < 0.3

    def test_path_based_fs_agrees_with_dag(self, fig2b):
        module, profile, tuples, propagator = fig2b
        fs = StaticSubModel(tuples)
        load = _cond_load(module, profile)
        paths = paths_from_instruction(module, load)
        branch_paths = [p for p in paths if p.terminal == "branch"]
        assert branch_paths
        path_value = fs.propagate(branch_paths[0]).propagation
        dag_value = next(
            e.probability for e in propagator.propagate(load).events
            if e.kind == EV_BRANCH
        )
        # Single-sequence case: the two formulations must agree.
        assert path_value == pytest.approx(dag_value, rel=1e-9)

    def test_sequence_result_sums_to_one(self, fig2b):
        module, profile, tuples, _prop = fig2b
        fs = StaticSubModel(tuples)
        add = next(
            inst for inst in module.instructions()
            if isinstance(inst, BinOp) and inst.op == "add"
        )
        for path in paths_from_instruction(module, add):
            result = fs.propagate(path)
            total = result.propagation + result.masking + result.crash
            assert total == pytest.approx(1.0)


class TestDagSemantics:
    def test_shared_terminal_counted_once(self):
        """A value reaching one store via several select paths must
        produce a single store event, not one per path."""
        module = Module("m")
        f = FunctionBuilder(module, "main")
        arr = f.array("a", I32, 2)
        v = f.c(1) + 2
        smaller = f.min(v, 100)          # cmp + select on v
        larger = f.max(smaller, 0)       # another cmp + select
        arr[f.c(0)] = larger
        f.out(arr[f.c(0)])
        f.done()
        module.finalize()
        profile, _ = ProfilingInterpreter(module).run()
        config = trident_config()
        propagator = ForwardPropagator(
            module, TupleDeriver(profile, config), config
        )
        add = next(i for i in module.instructions()
                   if isinstance(i, BinOp) and i.op == "add")
        events = propagator.propagate(add).events
        store_events = [e for e in events if e.kind == EV_STORE]
        assert len(store_events) == 1
        assert store_events[0].probability <= 1.0

    def test_probability_monotone_along_chain(self):
        module = Module("m")
        f = FunctionBuilder(module, "main")
        v = f.c(7)
        a = v + 1
        b = a & 0xFF  # masks high bits
        f.out(b)
        f.done()
        module.finalize()
        profile, _ = ProfilingInterpreter(module).run()
        config = trident_config()
        propagator = ForwardPropagator(
            module, TupleDeriver(profile, config), config
        )
        add = next(i for i in module.instructions()
                   if isinstance(i, BinOp) and i.op == "add")
        events = propagator.propagate(add).events
        output_event = next(e for e in events if e.kind == EV_OUTPUT)
        # add -> and 0xFF: 8 of 32 bits survive.
        assert output_event.probability == pytest.approx(8 / 32)

    def test_interprocedural_propagation(self):
        module = Module("m")
        helper = FunctionBuilder(module, "triple", [I32], ["x"], I32)
        helper.ret(helper.arg(0) * 3)
        helper.done()
        f = FunctionBuilder(module, "main")
        v = f.c(4) + 1
        f.out(f.call("triple", [v], I32))
        f.done()
        module.finalize()
        profile, _ = ProfilingInterpreter(module).run()
        config = trident_config()
        propagator = ForwardPropagator(
            module, TupleDeriver(profile, config), config
        )
        add = next(i for i in module.instructions()
                   if isinstance(i, BinOp) and i.op == "add")
        events = propagator.propagate(add).events
        assert any(e.kind == EV_OUTPUT for e in events)

    def test_crash_probability_reported(self, fig2b):
        module, profile, tuples, propagator = fig2b
        load = next(
            inst for inst in module.instructions()
            if isinstance(inst, Load) and profile.count(inst.iid) > 0
        )
        # A value feeding only the comparison has no crash mass; one
        # feeding a memory address would.  Check range validity.
        result = propagator.propagate(load)
        assert 0.0 <= result.crash_probability <= 1.0
