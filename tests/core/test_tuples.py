"""Propagation tuples: the paper's masking rules, measured empirically."""

import pytest
from hypothesis import given, strategies as st

from repro.core import TupleDeriver, trident_config
from repro.ir import I32, I64, const_float, const_int
from repro.ir.instructions import BinOp, Cast, ICmp, Load, Select
from repro.profiling import ProgramProfile


def deriver_with_samples(inst, samples) -> TupleDeriver:
    profile = ProgramProfile()
    inst.iid = 0
    profile.operand_samples[0] = samples
    return TupleDeriver(profile, trident_config())


class TestComparisonMasking:
    def test_fig2b_sign_bit_only(self):
        """cmp sgt $1, 0 with a small positive operand: only the sign
        bit flip changes the outcome — 1/32 (the paper's 0.03)."""
        cmp = ICmp("sgt", const_int(5, I32), const_int(0, I32))
        deriver = deriver_with_samples(cmp, [(5, 0)])
        result = deriver.tuple_for(cmp, 0)
        assert result.propagation == pytest.approx(1 / 32)
        assert result.masking == pytest.approx(31 / 32)
        assert result.crash == 0.0

    def test_boundary_value_more_sensitive(self):
        # Comparing 1 > 0: flipping bit 0 (1 -> 0) also changes the
        # outcome, so two decisive bits.
        cmp = ICmp("sgt", const_int(1, I32), const_int(0, I32))
        deriver = deriver_with_samples(cmp, [(1, 0)])
        assert deriver.tuple_for(cmp, 0).propagation == pytest.approx(2 / 32)

    def test_equality_all_bits_decisive(self):
        cmp = ICmp("eq", const_int(7, I32), const_int(7, I32))
        deriver = deriver_with_samples(cmp, [(7, 7)])
        # Any flip of an equal operand breaks equality.
        assert deriver.tuple_for(cmp, 0).propagation == pytest.approx(1.0)


class TestLogicMasking:
    def test_and_masks_by_other_operand(self):
        inst = BinOp("and", const_int(0, I32), const_int(0xF, I32))
        deriver = deriver_with_samples(inst, [(0x0, 0xF)])
        # Only flips in the low 4 bits pass through the 0xF mask.
        assert deriver.tuple_for(inst, 0).propagation == pytest.approx(4 / 32)

    def test_xor_transparent(self):
        inst = BinOp("xor", const_int(0, I32), const_int(0xABC, I32))
        deriver = deriver_with_samples(inst, [(0, 0xABC)])
        assert deriver.tuple_for(inst, 0).propagation == pytest.approx(1.0)

    def test_mul_by_zero_masks_everything(self):
        inst = BinOp("mul", const_int(3, I32), const_int(0, I32))
        deriver = deriver_with_samples(inst, [(3, 0)])
        assert deriver.tuple_for(inst, 0).propagation == pytest.approx(0.0)

    def test_add_transparent(self):
        inst = BinOp("add", const_int(3, I32), const_int(9, I32))
        deriver = deriver_with_samples(inst, [(3, 9)])
        assert deriver.tuple_for(inst, 0).propagation == pytest.approx(1.0)


class TestCrashTuples:
    def test_divisor_flip_to_zero_crashes(self):
        # Divisor 2 (one set bit): exactly one flip of 32 makes it zero.
        inst = BinOp("sdiv", const_int(100, I32), const_int(2, I32))
        deriver = deriver_with_samples(inst, [(100, 2)])
        result = deriver.tuple_for(inst, 1)
        assert result.crash == pytest.approx(1 / 32)

    def test_load_address_tuple_uses_profiled_crash(self):
        from repro.ir.instructions import Alloca

        slot = Alloca(I32, 1)
        slot.iid = 1
        load = Load(slot)
        load.iid = 0
        profile = ProgramProfile()
        profile.crash_prob_samples[0] = [0.9, 0.95]
        deriver = TupleDeriver(profile, trident_config())
        result = deriver.tuple_for(load, 0)
        assert result.crash == pytest.approx(0.925)
        assert result.propagation == pytest.approx(0.075)


class TestSelectTuples:
    def _select(self):
        cond = ICmp("slt", const_int(0, I32), const_int(1, I32))
        return Select(cond, const_int(1, I32), const_int(2, I32))

    def test_cond_flip_matters_when_arms_differ(self):
        sel = self._select()
        sel.iid = 0
        profile = ProgramProfile()
        profile.operand_samples[0] = [(1, 10, 20), (0, 5, 5)]
        profile.select_counts[0] = [3, 7]
        deriver = TupleDeriver(profile, trident_config())
        # Arms differ in 1 of 2 samples.
        assert deriver.tuple_for(sel, 0).propagation == pytest.approx(0.5)

    def test_arm_weighted_by_selection(self):
        sel = self._select()
        sel.iid = 0
        profile = ProgramProfile()
        profile.select_counts[0] = [3, 7]
        deriver = TupleDeriver(profile, trident_config())
        assert deriver.tuple_for(sel, 1).propagation == pytest.approx(0.7)
        assert deriver.tuple_for(sel, 2).propagation == pytest.approx(0.3)


class TestFallbacks:
    def test_unsampled_cmp_heuristic(self):
        cmp = ICmp("sgt", const_int(5, I32), const_int(0, I32))
        cmp.iid = 0
        deriver = TupleDeriver(ProgramProfile(), trident_config())
        assert deriver.tuple_for(cmp, 0).propagation == pytest.approx(2 / 32)

    def test_unsampled_trunc_ratio(self):
        cast = Cast("trunc", const_int(5, I64), I32)
        cast.iid = 0
        deriver = TupleDeriver(ProgramProfile(), trident_config())
        assert deriver.tuple_for(cast, 0).propagation == pytest.approx(0.5)

    def test_unsampled_arith_identity(self):
        inst = BinOp("add", const_int(1, I32), const_int(2, I32))
        inst.iid = 0
        deriver = TupleDeriver(ProgramProfile(), trident_config())
        assert deriver.tuple_for(inst, 0).propagation == 1.0

    def test_cache_hit(self):
        inst = BinOp("add", const_int(1, I32), const_int(2, I32))
        deriver = deriver_with_samples(inst, [(1, 2)])
        assert deriver.tuple_for(inst, 0) is deriver.tuple_for(inst, 0)


class TestFdivExtension:
    def test_disabled_by_default(self):
        inst = BinOp("fdiv", const_float(1.0), const_float(3.0))
        deriver = deriver_with_samples(inst, [(1.0, 3.0)])
        baseline = deriver.tuple_for(inst, 0).propagation

        profile = ProgramProfile()
        profile.operand_samples[0] = [(1.0, 3.0)]
        enabled = TupleDeriver(
            profile, trident_config(model_fdiv_masking=True)
        )
        assert enabled.tuple_for(inst, 0).propagation < baseline


# -- invariants ----------------------------------------------------------------

@given(st.integers(min_value=0, max_value=2**32 - 1),
       st.integers(min_value=0, max_value=2**32 - 1),
       st.sampled_from(["add", "sub", "mul", "and", "or", "xor"]))
def test_tuple_always_sums_to_one(a, b, op):
    inst = BinOp(op, const_int(a, I32), const_int(b, I32))
    deriver = deriver_with_samples(inst, [(a, b)])
    for operand_index in (0, 1):
        result = deriver.tuple_for(inst, operand_index)
        total = result.propagation + result.masking + result.crash
        assert total == pytest.approx(1.0)
        assert 0.0 <= result.propagation <= 1.0
        assert 0.0 <= result.crash <= 1.0
