"""fm (Fig. 4 worked example, cycles, memoization) and the floating
point output masking rule (the 48.66% example)."""

import pytest

from repro.core import Trident, output_masking_factor, trident_config
from repro.ir import F32, F64, I32, FunctionBuilder, Module
from repro.ir.instructions import Output, Store
from repro.profiling import ProfilingInterpreter


def model_for(module: Module, **config_overrides) -> Trident:
    profile, _ = ProfilingInterpreter(module).run()
    return Trident(module, profile, trident_config(**config_overrides))


class TestFig4:
    def build_fig4(self, n=10, printed=6) -> Module:
        """Store loop; load loop printing under an independent condition
        true ``printed``/``n`` of the time (Fig. 4's 0.6)."""
        module = Module("fig4")
        f = FunctionBuilder(module, "main")
        arr = f.array("a", I32, n)
        f.for_range(0, n, lambda i: arr.__setitem__(i, i + 100))

        def body(i):
            f.if_(i < printed, lambda: f.out(arr[i]))

        f.for_range(0, n, body, name="j")
        f.done()
        return module.finalize()

    def test_store_propagates_at_print_probability(self):
        module = self.build_fig4()
        model = model_for(module)
        store = next(
            inst for inst in module.instructions()
            if isinstance(inst, Store)
            and model.profile.store_instances.get(inst.iid, 0) == 10
        )
        # Fig. 4: propagation = 1 * 0.6 + 0 * 0.4 = 0.6.  Our load
        # executes only under the condition, so the edge weight itself
        # carries the 0.6.
        assert model.fm.propagate_store(store) == pytest.approx(0.6, abs=0.05)

    def test_all_printed_gives_one(self):
        module = self.build_fig4(n=10, printed=10)
        model = model_for(module)
        store = next(
            inst for inst in module.instructions()
            if isinstance(inst, Store)
            and model.profile.store_instances.get(inst.iid, 0) == 10
        )
        assert model.fm.propagate_store(store) == pytest.approx(1.0, abs=0.01)

    def test_never_printed_gives_zero(self):
        module = self.build_fig4(n=10, printed=0)
        model = model_for(module)
        store = next(
            inst for inst in module.instructions()
            if isinstance(inst, Store)
            and model.profile.store_instances.get(inst.iid, 0) == 10
        )
        assert model.fm.propagate_store(store) == pytest.approx(0.0, abs=1e-6)

    def test_memoization(self):
        module = self.build_fig4()
        model = model_for(module)
        store = next(
            inst for inst in module.instructions() if isinstance(inst, Store)
        )
        model.fm.propagate_store(store)
        assert model.fm.memoized_stores >= 1


class TestAccumulatorCycle:
    def test_corruption_persists_through_accumulator(self):
        """A corrupted accumulator cell survives the store->load->store
        cycle until the final output: fm must converge near 1, not cut
        the cycle to 0."""
        module = Module("acc")
        f = FunctionBuilder(module, "main")
        total = f.local("t", I32, init=0)
        f.for_range(0, 20, lambda i: total.set(total.get() + i))
        f.out(total.get())
        f.done()
        module.finalize()
        model = model_for(module)
        acc_store = max(
            (i for i in module.instructions() if isinstance(i, Store)),
            key=lambda s: model.profile.store_instances.get(s.iid, 0),
        )
        assert model.fm.propagate_store(acc_store) > 0.9

    def test_fixed_point_is_bounded(self, pathfinder_module,
                                    pathfinder_profile):
        model = Trident(pathfinder_module, pathfinder_profile)
        for inst in pathfinder_module.instructions():
            if isinstance(inst, Store):
                value = model.fm.propagate_store(inst)
                assert 0.0 <= value <= 1.0


class TestOutputMasking:
    def test_paper_4866_percent(self):
        """f32 printed at 2 significant digits:
        ((32-23) + 23*(2/7)) / 32 = 48.66% (Sec. IV-E)."""
        out = Output(_f32_value(), precision=2)
        assert output_masking_factor(out) == pytest.approx(0.4866, abs=0.001)

    def test_full_precision_no_masking(self):
        out = Output(_f32_value(), precision=None)
        assert output_masking_factor(out) == 1.0
        out = Output(_f32_value(), precision=7)
        assert output_masking_factor(out) == 1.0

    def test_integer_no_masking(self):
        from repro.ir import const_int

        out = Output(const_int(5))
        assert output_masking_factor(out) == 1.0

    def test_f64_scaling(self):
        from repro.ir import const_float

        out = Output(const_float(1.0, F64), precision=3)
        expected = ((64 - 52) + 52 * (3 / 15)) / 64
        assert output_masking_factor(out) == pytest.approx(expected)

    def test_lower_precision_masks_more(self):
        coarse = output_masking_factor(Output(_f32_value(), precision=1))
        fine = output_masking_factor(Output(_f32_value(), precision=5))
        assert coarse < fine


def _f32_value():
    from repro.ir import const_float

    return const_float(1.0, F32)
