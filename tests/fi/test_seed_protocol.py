"""Property tests: seed substream protocol and CampaignResult merge."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fi import OUTCOMES, CampaignResult
from repro.fi.seeds import rng_for, seed_for

#: Locked-in protocol constants: changing the derivation silently breaks
#: reproducibility of every recorded campaign, so it must fail a test.
PINNED = {
    (0, 0): 12297000517128658277,
    (2018, 3): 11262725722373710044,
}

seeds = st.integers(min_value=-(2 ** 64), max_value=2 ** 64)
indices = st.integers(min_value=0, max_value=2 ** 32)
counts = st.fixed_dictionaries({o: st.integers(0, 10_000) for o in OUTCOMES})


def result_of(count_map) -> CampaignResult:
    result = CampaignResult()
    result.counts.update(count_map)
    return result


class TestSeedProtocol:
    def test_pinned_derivation(self):
        for (seed, index), expected in PINNED.items():
            assert seed_for(seed, index) == expected

    @given(seeds, indices)
    @settings(max_examples=100, deadline=None)
    def test_deterministic_and_64bit(self, seed, index):
        a = seed_for(seed, index)
        assert a == seed_for(seed, index)
        assert 0 <= a < 2 ** 64

    @given(seeds, indices)
    @settings(max_examples=50, deadline=None)
    def test_rng_substreams_reproducible(self, seed, index):
        draws = [rng_for(seed, index).random() for _ in range(2)]
        assert draws[0] == draws[1]

    def test_no_collisions_for_10k_run_indices(self):
        derived = {seed_for(2018, i) for i in range(10_000)}
        assert len(derived) == 10_000

    def test_no_first_draw_collisions_for_10k_substreams(self):
        # Even the generated values (not just the seeds) must not
        # collide: 10k substreams, first two 32-bit draws each.
        draws = {
            (rng.getrandbits(32), rng.getrandbits(32))
            for rng in (rng_for(2018, i) for i in range(10_000))
        }
        assert len(draws) == 10_000

    def test_distinct_campaign_seeds_distinct_substreams(self):
        a = {seed_for(0, i) for i in range(1000)}
        b = {seed_for(1, i) for i in range(1000)}
        assert not a & b

    def test_negative_run_index_rejected(self):
        with pytest.raises(ValueError):
            seed_for(0, -1)

    def test_huge_campaign_seed_supported(self):
        assert seed_for(-(2 ** 200), 0) != seed_for(2 ** 200, 0)


class TestMergeProperties:
    @given(counts, counts)
    @settings(max_examples=100, deadline=None)
    def test_total_additive(self, a, b):
        merged = result_of(a).merge(result_of(b))
        assert merged.total == result_of(a).total + result_of(b).total

    @given(counts, counts)
    @settings(max_examples=100, deadline=None)
    def test_commutative(self, a, b):
        ab = result_of(a).merge(result_of(b))
        ba = result_of(b).merge(result_of(a))
        assert ab.counts == ba.counts

    @given(counts, counts, counts)
    @settings(max_examples=100, deadline=None)
    def test_associative(self, a, b, c):
        left = result_of(a).merge(result_of(b)).merge(result_of(c))
        right = result_of(a).merge(result_of(b).merge(result_of(c)))
        assert left.counts == right.counts

    @given(counts, counts)
    @settings(max_examples=100, deadline=None)
    def test_probabilities_stay_in_unit_interval(self, a, b):
        merged = result_of(a).merge(result_of(b))
        total = 0.0
        for outcome in OUTCOMES:
            p = merged.probability(outcome)
            assert 0.0 <= p <= 1.0
            total += p
        assert total == 0.0 or total == pytest.approx(1.0)

    @given(counts, counts)
    @settings(max_examples=50, deadline=None)
    def test_merge_identity(self, a, _b):
        merged = result_of(a).merge(CampaignResult())
        assert merged.counts == result_of(a).counts

    @given(counts, counts)
    @settings(max_examples=50, deadline=None)
    def test_merge_sums_timings(self, a, b):
        left, right = result_of(a), result_of(b)
        left.wall_seconds, left.cpu_seconds = 1.5, 3.0
        right.wall_seconds, right.cpu_seconds = 0.5, 1.0
        merged = left.merge(right)
        assert merged.wall_seconds == pytest.approx(2.0)
        assert merged.cpu_seconds == pytest.approx(4.0)
