"""Interrupt-safe campaign teardown and partial-shard checkpoints.

An interrupted campaign must (1) terminate instead of hanging, (2) keep
every completed shard's counts, (3) report exactly which seed ranges
finished, and (4) leave per-shard checkpoints in the shared result
store so the next run of the same campaign resumes instead of
restarting.  These tests drive the serial executor path (the pool path
shares the same merge/checkpoint plumbing) by making ``run_span`` raise
``KeyboardInterrupt`` partway through a sharded campaign.
"""

from __future__ import annotations

import pytest

from repro.cache import get_cache
from repro.fi import (
    CampaignInterrupted,
    CampaignSettings,
    FaultInjector,
    ModuleSpec,
    ParallelCampaign,
)
from repro.fi.parallel import run_cached_campaign
from tests.conftest import cached_module

BENCH = "pathfinder"
RUNS = 100
CHUNK = 20
SEED = 77


class InterruptingInjector:
    """Delegates to a real injector; interrupts after ``allow`` spans."""

    def __init__(self, injector: FaultInjector, allow: int):
        self._injector = injector
        self._allow = allow
        self.spans: list[tuple[int, int]] = []

    def __getattr__(self, name):
        return getattr(self._injector, name)

    def __call__(self):
        # run_cached_campaign treats non-FaultInjector injectors as
        # lazy factories, invoked only on a store miss.
        return self

    def run_span(self, start, count, seed):
        if len(self.spans) >= self._allow:
            raise KeyboardInterrupt
        self.spans.append((start, count))
        return self._injector.run_span(start, count, seed)


class TestSerialInterrupt:
    def run_interrupted(self, allow: int):
        injector = InterruptingInjector(
            FaultInjector(cached_module(BENCH)), allow
        )
        campaign = ParallelCampaign(
            injector=injector,
            settings=CampaignSettings(chunk_size=CHUNK),
        )
        with pytest.raises(CampaignInterrupted) as exc:
            campaign.run(RUNS, seed=SEED)
        return exc.value.result

    def test_interrupt_surfaces_partial_result(self):
        partial = self.run_interrupted(allow=2)
        assert partial.interrupted
        assert partial.total == 2 * CHUNK

    def test_completed_ranges_reported_coalesced(self):
        partial = self.run_interrupted(allow=3)
        assert partial.completed_ranges == [(0, 3 * CHUNK)]

    def test_partial_counts_match_a_clean_prefix_run(self):
        partial = self.run_interrupted(allow=2)
        prefix = FaultInjector(cached_module(BENCH)).run_span(
            0, 2 * CHUNK, SEED
        )
        assert partial.counts == prefix.counts

    def test_interrupt_is_still_a_keyboardinterrupt(self):
        # Callers that only handle KeyboardInterrupt see a plain
        # interrupt; the partial result is opt-in.
        assert issubclass(CampaignInterrupted, KeyboardInterrupt)


class TestCheckpointResume:
    def test_interrupted_store_campaign_resumes(self):
        spec = ModuleSpec.from_benchmark(BENCH, "test")
        settings = CampaignSettings(chunk_size=CHUNK)
        flaky = InterruptingInjector(
            FaultInjector(cached_module(BENCH)), allow=2
        )
        with pytest.raises(CampaignInterrupted):
            run_cached_campaign(
                RUNS, seed=SEED, spec=spec, injector=flaky,
                settings=settings,
            )
        before = get_cache().read_counters()["partial_shards_resumed"]
        resumed = run_cached_campaign(
            RUNS, seed=SEED, spec=spec, settings=settings,
        )
        # The two interrupted shards replayed from the store...
        assert resumed.shards_resumed == 2
        assert get_cache().read_counters()["partial_shards_resumed"] == \
            before + 2
        # ...and the finished campaign is bit-identical to a clean run.
        clean = FaultInjector(cached_module(BENCH)).campaign(
            RUNS, seed=SEED
        )
        assert resumed.counts == clean.counts
        assert not resumed.interrupted

    def test_completed_campaign_compacts_shard_checkpoints(self):
        # After the resumed run stored its merged result, a repeat is a
        # pure campaign-cache hit with no shard replay.
        spec = ModuleSpec.from_benchmark(BENCH, "test")
        settings = CampaignSettings(chunk_size=CHUNK)
        replay = run_cached_campaign(
            RUNS, seed=SEED, spec=spec, settings=settings,
        )
        assert replay.from_cache
        assert replay.shards_resumed == 0
