"""Engine reuse: one compilation per worker per module revision.

Compiling an :class:`ExecutionEngine` (closure specialization of every
instruction) is the expensive per-module step; a campaign must pay it
once per worker and amortize it across every span, round, and trial.
``engine_build_count`` counts compilations process-wide, so these tests
lock the invariant by measuring deltas.
"""

from __future__ import annotations

import pytest

from repro.fi import FaultInjector, ModuleSpec
from repro.fi import parallel as fi_parallel
from repro.fi.parallel import _run_span_task
from repro.interp import engine_build_count
from tests.conftest import cached_module


@pytest.fixture
def fresh_worker(monkeypatch):
    """Simulate a fresh pool worker: clear the per-process injector
    cache without leaking state into other tests."""
    monkeypatch.setattr(fi_parallel, "_WORKER_SPEC", None)
    monkeypatch.setattr(fi_parallel, "_WORKER_INJECTOR", None)


class TestInjectorReuse:
    def test_campaign_compiles_exactly_once(self):
        before = engine_build_count()
        injector = FaultInjector(cached_module("pathfinder"))
        assert engine_build_count() == before + 1
        injector.campaign(60, seed=1)
        injector.campaign(60, seed=2)
        injector.run_span(0, 40, 3)
        assert engine_build_count() == before + 1

    def test_checkpoint_capture_reuses_engine(self):
        injector = FaultInjector(cached_module("hotspot"))
        before = engine_build_count()
        assert injector.checkpoints() is not None
        injector.run_span(0, 40, 1)
        injector.configure_checkpoints(True, stride=100)
        injector.run_span(0, 40, 1)
        assert engine_build_count() == before


class TestWorkerReuse:
    def test_same_spec_spans_share_one_build(self, fresh_worker):
        spec = ModuleSpec.from_benchmark("pathfinder", "test")
        before = engine_build_count()
        _run_span_task((spec, 0, 30, 1, True, 0, None, 0))
        assert engine_build_count() == before + 1
        _run_span_task((spec, 30, 30, 1, True, 0, None, 0))
        _run_span_task((spec, 60, 30, 1, False, 0, "closure", 0))  # toggling
        _run_span_task((spec, 90, 30, 1, True, 0, "codegen", 8))  # the knobs
        assert engine_build_count() == before + 1                # keeps it

    def test_new_module_revision_recompiles(self, fresh_worker):
        before = engine_build_count()
        _run_span_task(
            (ModuleSpec.from_benchmark("pathfinder", "test"), 0, 20, 1,
             True, 0, None, 0)
        )
        _run_span_task(
            (ModuleSpec.from_benchmark("nw", "test"), 0, 20, 1, True, 0,
             None, 0)
        )
        assert engine_build_count() == before + 2
