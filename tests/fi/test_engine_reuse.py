"""Engine reuse: one compilation per worker per module revision.

Compiling an :class:`ExecutionEngine` (closure specialization of every
instruction) is the expensive per-module step; a campaign must pay it
once per worker and amortize it across every shard, round, and trial.
``engine_build_count`` counts compilations process-wide, so these tests
lock the invariant by measuring deltas.
"""

from __future__ import annotations

import pytest

from repro.fi import FaultInjector, ModuleSpec
from repro.sched import ShardSpec, run_shard
from repro.sched import shard as sched_shard
from repro.interp import engine_build_count
from tests.conftest import cached_module


@pytest.fixture
def fresh_worker(monkeypatch):
    """Simulate a fresh pool worker: clear the per-process injector
    cache without leaking state into other tests."""
    monkeypatch.setattr(sched_shard, "_WORKER_SPEC", None)
    monkeypatch.setattr(sched_shard, "_WORKER_INJECTOR", None)


def shard(spec, start, count, seed=1, checkpoint=True, stride=0,
          tier=None, lanes=0):
    return ShardSpec(
        module=spec, start=start, count=count, seed=seed,
        checkpoint=checkpoint, checkpoint_stride=stride,
        interp_tier=tier, batch_lanes=lanes,
    )


class TestInjectorReuse:
    def test_campaign_compiles_exactly_once(self):
        before = engine_build_count()
        injector = FaultInjector(cached_module("pathfinder"))
        assert engine_build_count() == before + 1
        injector.campaign(60, seed=1)
        injector.campaign(60, seed=2)
        injector.run_span(0, 40, 3)
        assert engine_build_count() == before + 1

    def test_checkpoint_capture_reuses_engine(self):
        injector = FaultInjector(cached_module("hotspot"))
        before = engine_build_count()
        assert injector.checkpoints() is not None
        injector.run_span(0, 40, 1)
        injector.configure_checkpoints(True, stride=100)
        injector.run_span(0, 40, 1)
        assert engine_build_count() == before


class TestWorkerReuse:
    def test_same_spec_shards_share_one_build(self, fresh_worker):
        spec = ModuleSpec.from_benchmark("pathfinder", "test")
        before = engine_build_count()
        run_shard(shard(spec, 0, 30))
        assert engine_build_count() == before + 1
        run_shard(shard(spec, 30, 30))
        run_shard(shard(spec, 60, 30, checkpoint=False, tier="closure"))
        run_shard(shard(spec, 90, 30, tier="codegen", lanes=8))  # toggling
        assert engine_build_count() == before + 1            # knobs keeps it

    def test_new_module_revision_recompiles(self, fresh_worker):
        before = engine_build_count()
        run_shard(shard(ModuleSpec.from_benchmark("pathfinder", "test"),
                        0, 20))
        run_shard(shard(ModuleSpec.from_benchmark("nw", "test"), 0, 20))
        assert engine_build_count() == before + 2

    def test_direct_injector_bypasses_worker_cache(self, fresh_worker):
        injector = FaultInjector(cached_module("pathfinder"))
        before = engine_build_count()
        result = run_shard(shard(ModuleSpec(), 0, 20), injector=injector)
        assert engine_build_count() == before  # no materialization
        assert sched_shard._WORKER_INJECTOR is None  # cache untouched
        assert sum(result.counts.values()) == 20
