"""Differential tests: the parallel campaign engine vs the serial path.

The seed protocol makes a campaign a pure function of
``(module, seed, run index set)``, so the parallel engine must produce
*bit-identical* counts to the serial path for every worker count and
chunking — these tests are the lock on that contract.
"""

import pytest

from repro.fi import (
    OUTCOMES,
    SDC,
    FaultInjector,
    ModuleSpec,
    ParallelCampaign,
    run_parallel_campaign,
)
from repro.stats import wilson_confidence
from tests.conftest import build_straightline_module, cached_module

RUNS = 150
SEED = 9

#: Two small bench programs with different outcome mixes (pathfinder is
#: crash-heavy, bfs_rodinia loop/branch heavy).
BENCHES = ("pathfinder", "bfs_rodinia")


@pytest.fixture(scope="module", params=BENCHES)
def bench(request):
    return request.param


def serial_result(name, runs=RUNS, seed=SEED):
    return FaultInjector(cached_module(name)).campaign(runs, seed=seed)


class TestDifferential:
    def test_workers4_unchunked_identical_to_serial(self, bench):
        serial = serial_result(bench)
        parallel = run_parallel_campaign(
            RUNS, seed=SEED,
            spec=ModuleSpec.from_benchmark(bench, "test"),
            workers=4,
        )
        assert parallel.counts == serial.counts
        assert parallel.workers == 4
        assert not parallel.degraded

    def test_chunked_identical_and_cis_overlap(self, bench):
        serial = serial_result(bench)
        chunked = run_parallel_campaign(
            RUNS, seed=SEED,
            spec=ModuleSpec.from_benchmark(bench, "test"),
            workers=4, chunk_size=17,
        )
        # The seed protocol makes chunking invisible: counts are not
        # merely statistically compatible but identical...
        assert chunked.counts == serial.counts
        # ...which implies the weaker CI-overlap contract holds too.
        a = wilson_confidence(chunked.counts[SDC], chunked.total)
        b = wilson_confidence(serial.counts[SDC], serial.total)
        assert a.low <= b.high and b.low <= a.high

    def test_worker_count_invariance(self, bench):
        spec = ModuleSpec.from_benchmark(bench, "test")
        results = [
            run_parallel_campaign(100, seed=SEED, spec=spec, workers=w)
            for w in (1, 2, 4)
        ]
        assert results[0].counts == results[1].counts == results[2].counts

    def test_seed_sensitivity_preserved(self, bench):
        spec = ModuleSpec.from_benchmark(bench, "test")
        a = run_parallel_campaign(RUNS, seed=1, spec=spec, workers=2)
        b = run_parallel_campaign(RUNS, seed=2, spec=spec, workers=2)
        assert a.counts != b.counts  # overwhelmingly likely

    def test_ir_text_spec_roundtrip(self):
        # Arbitrary (non-registry) modules ship to workers as printed IR.
        module = build_straightline_module()
        serial = FaultInjector(module).campaign(80, seed=SEED)
        parallel = run_parallel_campaign(
            80, seed=SEED, spec=ModuleSpec.from_module(module), workers=2,
        )
        assert parallel.counts == serial.counts

    @pytest.mark.slow
    def test_big_differential_blackscholes(self):
        serial = FaultInjector(cached_module("blackscholes")).campaign(
            1000, seed=SEED
        )
        parallel = run_parallel_campaign(
            1000, seed=SEED,
            spec=ModuleSpec.from_benchmark("blackscholes", "test"),
            workers=4, chunk_size=83,
        )
        assert parallel.counts == serial.counts


class TestFallback:
    def test_bad_spec_degrades_to_serial_without_losing_counts(self):
        injector = FaultInjector(cached_module("pathfinder"))
        bad_spec = ModuleSpec(benchmark="no-such-benchmark")
        result = run_parallel_campaign(
            80, seed=3, spec=bad_spec, injector=injector, workers=2,
        )
        assert result.counts == injector.campaign(80, seed=3).counts
        assert result.degraded
        assert result.workers == 1

    def test_spec_derived_from_injector_module(self):
        # No spec given: the engine ships the module's printed IR.
        injector = FaultInjector(cached_module("pathfinder"))
        campaign = ParallelCampaign(injector=injector)
        spec = campaign.spec()
        assert spec.ir_text is not None
        rebuilt = FaultInjector(spec.materialize())
        assert rebuilt.campaign(60, seed=1).counts == \
            injector.campaign(60, seed=1).counts

    def test_requires_spec_or_injector(self):
        with pytest.raises(ValueError):
            ParallelCampaign()

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError):
            ModuleSpec().materialize()


class TestBookkeeping:
    def test_result_metadata(self, bench):
        result = run_parallel_campaign(
            120, seed=SEED,
            spec=ModuleSpec.from_benchmark(bench, "test"), workers=2,
        )
        assert result.total == 120
        assert result.runs_requested == 120
        assert result.rounds == 1
        assert not result.stopped_early
        assert set(result.counts) == set(OUTCOMES)
        assert result.wall_seconds > 0.0
        assert result.cpu_seconds > 0.0
