"""Checkpoint-and-fork campaigns vs cold full runs.

Suffix-only execution is a pure optimization: for every benchmark,
every seed, every worker count, and every stride, the outcome counts
must be bit-identical to cold full runs.  These tests are the lock on
that contract, plus the degradation policy (any checkpoint failure
falls back to cold runs rather than risking counts).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.bench import BENCHMARK_NAMES
from repro.fi import (
    CampaignResult,
    FaultInjector,
    ModuleSpec,
    run_parallel_campaign,
)
from repro.fi.seeds import rng_for
from tests.conftest import cached_module

RUNS = 120
SEED = 5


def cold_injector(name: str) -> FaultInjector:
    return FaultInjector(cached_module(name), checkpoint=False)


def warm_injector(name: str, stride: int = 0) -> FaultInjector:
    return FaultInjector(
        cached_module(name), checkpoint=True, checkpoint_stride=stride
    )


class TestTrialEquivalence:
    """Property test: on every benchmark, a random (iid, occurrence,
    bit) triple resumed from a snapshot classifies exactly like a cold
    full run — same outcome class, outputs, and dynamic footprint."""

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_random_triples_match_cold_runs(self, name):
        cold = cold_injector(name)
        warm = warm_injector(name)
        capture = warm.checkpoints()
        assert capture is not None and not warm.checkpoint_degraded
        resumed = 0
        for index in range(25):
            injection = cold.sample_injection(rng_for(SEED, index))
            cold_result = cold.engine.run(
                injection, budget=cold.hang_budget
            )
            snapshot = capture.snapshot_for(injection)
            if snapshot is None:
                continue
            resumed += 1
            warm_result = capture.resume(
                snapshot, injection, budget=warm.hang_budget
            )
            assert warm_result.outcome == cold_result.outcome
            assert warm_result.outputs == cold_result.outputs
            assert warm_result.dynamic_count == cold_result.dynamic_count
            assert warm_result.block_counts == cold_result.block_counts
            assert warm._classify(warm_result) == cold._classify(cold_result)
        assert resumed > 0, f"{name}: every trial ran cold"


class TestCampaignDifferential:
    @pytest.mark.parametrize("name", ("pathfinder", "bfs_rodinia", "nw"))
    def test_span_counts_identical(self, name):
        cold = cold_injector(name).run_span(0, RUNS, SEED)
        warm = warm_injector(name).run_span(0, RUNS, SEED)
        assert warm.counts == cold.counts
        assert warm.checkpointed and not warm.checkpoint_degraded
        assert not cold.checkpointed
        assert warm.skipped_instructions > 0
        assert warm.snapshot_bytes > 0
        assert warm.dynamic_instructions < cold.dynamic_instructions

    def test_stride_invariance(self):
        baseline = cold_injector("hotspot").run_span(0, RUNS, SEED)
        for stride in (25, 400):
            result = warm_injector("hotspot", stride).run_span(
                0, RUNS, SEED
            )
            assert result.counts == baseline.counts, stride

    def test_parallel_workers_with_checkpointing(self):
        spec = ModuleSpec.from_benchmark("pathfinder", "test")
        serial = cold_injector("pathfinder").run_span(0, RUNS, SEED)
        parallel = run_parallel_campaign(
            RUNS, seed=SEED, spec=spec, workers=2, checkpoint=True,
        )
        assert parallel.counts == serial.counts
        assert parallel.checkpointed and not parallel.checkpoint_degraded
        assert parallel.skipped_instructions > 0

    def test_per_instruction_campaign_checkpointed(self):
        cold = cold_injector("pathfinder")
        warm = warm_injector("pathfinder")
        iids = cold.eligible_iids()[:5]
        cold_results = cold.per_instruction_campaign(
            iids, runs_per_instruction=10, seed=SEED
        )
        warm_results = warm.per_instruction_campaign(
            iids, runs_per_instruction=10, seed=SEED
        )
        for iid in iids:
            assert warm_results[iid].counts == cold_results[iid].counts


class TestDegradation:
    def test_capture_failure_degrades_to_cold_runs(self, monkeypatch):
        injector = warm_injector("pathfinder")
        baseline = cold_injector("pathfinder").run_span(0, 60, SEED)

        def boom(*_args, **_kwargs):
            raise RuntimeError("capture exploded")

        monkeypatch.setattr(injector.engine, "capture", boom)
        result = injector.run_span(0, 60, SEED)
        assert result.counts == baseline.counts
        assert injector.checkpoint_degraded
        assert not result.checkpointed
        assert result.checkpoint_degraded
        assert result.skipped_instructions == 0

    def test_resume_failure_degrades_to_cold_runs(self, monkeypatch):
        injector = warm_injector("pathfinder")
        baseline = cold_injector("pathfinder").run_span(0, 60, SEED)
        assert injector.checkpoints() is not None

        def boom(*_args, **_kwargs):
            raise RuntimeError("resume exploded")

        monkeypatch.setattr(injector.engine, "resume_run", boom)
        result = injector.run_span(0, 60, SEED)
        assert result.counts == baseline.counts
        assert injector.checkpoint_degraded
        assert result.checkpoint_degraded

    def test_reenable_clears_degraded_flag(self):
        injector = warm_injector("pathfinder")
        injector.checkpoint = False
        injector.checkpoint_degraded = True
        injector.configure_checkpoints(True)
        assert injector.checkpoint
        assert not injector.checkpoint_degraded


class TestBookkeeping:
    def test_throughput_fields_merge_and_roundtrip(self):
        a = warm_injector("pathfinder").run_span(0, 40, SEED)
        b = warm_injector("pathfinder").run_span(40, 40, SEED)
        merged = a.merge(b)
        assert merged.dynamic_instructions == (
            a.dynamic_instructions + b.dynamic_instructions
        )
        assert merged.skipped_instructions == (
            a.skipped_instructions + b.skipped_instructions
        )
        assert merged.checkpointed
        rebuilt = CampaignResult.from_dict(merged.to_dict())
        assert rebuilt.dynamic_instructions == merged.dynamic_instructions
        assert rebuilt.skipped_instructions == merged.skipped_instructions
        assert rebuilt.snapshot_bytes == merged.snapshot_bytes
        assert rebuilt.checkpointed == merged.checkpointed

    def test_old_cache_payloads_still_load(self):
        payload = warm_injector("nw").run_span(0, 30, SEED).to_dict()
        for key in ("dynamic_instructions", "skipped_instructions",
                    "snapshot_bytes", "checkpointed"):
            payload.pop(key, None)
        rebuilt = CampaignResult.from_dict(payload)
        assert rebuilt.dynamic_instructions == 0
        assert not rebuilt.checkpointed


@pytest.mark.slow
class TestAtScale:
    def test_thousand_run_differential_and_speedup(self):
        runs = int(os.environ.get("REPRO_CHECKPOINT_RUNS", "1000"))
        speedups = []
        for name in ("pathfinder", "hotspot"):
            cold = cold_injector(name)
            started = time.perf_counter()
            cold_result = cold.run_span(0, runs, SEED)
            cold_seconds = time.perf_counter() - started
            warm = warm_injector(name)
            started = time.perf_counter()
            warm_result = warm.run_span(0, runs, SEED)
            warm_seconds = time.perf_counter() - started
            assert warm_result.counts == cold_result.counts
            speedups.append(cold_seconds / warm_seconds)
        assert max(speedups) >= 2.0, speedups
