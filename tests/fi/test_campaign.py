"""Fault injection campaigns: sampling, classification, statistics."""

import random

import pytest

from repro.fi import (
    BENIGN,
    CRASHED,
    CampaignResult,
    FaultInjector,
    OUTCOMES,
    SDC,
)
from repro.ir import FunctionBuilder, I32, Module
from tests.conftest import cached_module


@pytest.fixture(scope="module")
def injector():
    return FaultInjector(cached_module("pathfinder"))


class TestSampling:
    def test_samples_weighted_by_execution(self, injector):
        rng = random.Random(0)
        counts = {}
        for _ in range(2000):
            injection = injector.sample_injection(rng)
            counts[injection.iid] = counts.get(injection.iid, 0) + 1
        # The hottest instruction should be sampled far more often than
        # a coldest one, roughly proportional to dynamic counts.
        by_count = sorted(
            zip(injector.target_iids, injector.target_counts),
            key=lambda pair: pair[1],
        )
        cold_iid, cold_n = by_count[0]
        hot_iid, hot_n = by_count[-1]
        assert hot_n > 2 * cold_n  # precondition for the check below
        assert counts.get(hot_iid, 0) > counts.get(cold_iid, 0)

    def test_occurrence_in_range(self, injector):
        rng = random.Random(1)
        for _ in range(200):
            injection = injector.sample_injection(rng)
            index = injector.target_iids.index(injection.iid)
            assert 1 <= injection.occurrence <= injector.target_counts[index]

    def test_bit_in_register_width(self, injector):
        rng = random.Random(2)
        for _ in range(200):
            injection = injector.sample_injection(rng)
            bits = injector.module.instruction(injection.iid).type.bits
            assert 0 <= injection.bit < bits

    def test_targets_all_have_users_and_counts(self, injector):
        for iid in injector.target_iids:
            inst = injector.module.instruction(iid)
            assert inst.has_result
            assert inst.users

    def test_targeted_injection_rejects_bad_iid(self, injector):
        rng = random.Random(3)
        store_iid = next(
            inst.iid for inst in injector.module.instructions()
            if inst.opcode == "store"
        )
        with pytest.raises(ValueError):
            injector.injection_for(store_iid, rng)


class TestCampaigns:
    def test_counts_sum_to_n(self, injector):
        result = injector.campaign(100, seed=11)
        assert result.total == 100
        assert set(result.counts) == set(OUTCOMES)

    def test_campaign_deterministic_per_seed(self, injector):
        a = injector.campaign(100, seed=5)
        b = injector.campaign(100, seed=5)
        assert a.counts == b.counts

    def test_different_seeds_differ(self, injector):
        a = injector.campaign(150, seed=5)
        b = injector.campaign(150, seed=6)
        assert a.counts != b.counts  # overwhelmingly likely

    def test_all_outcome_classes_occur(self, injector):
        result = injector.campaign(400, seed=7)
        assert result.counts[SDC] > 0
        assert result.counts[CRASHED] > 0
        assert result.counts[BENIGN] > 0

    def test_per_instruction_campaign(self, injector):
        iids = injector.eligible_iids()[:5]
        results = injector.per_instruction_campaign(iids, 30, seed=1)
        assert set(results) == set(iids)
        for result in results.values():
            assert result.total == 30

    def test_straightline_fault_free_benign_rate(self, straightline_module):
        injector = FaultInjector(straightline_module)
        result = injector.campaign(200, seed=1)
        # A multiply feeding the output: most bit flips must be SDCs.
        assert result.sdc_probability > 0.5


class TestCampaignResult:
    def test_probabilities(self):
        result = CampaignResult()
        result.counts[SDC] = 25
        result.counts[BENIGN] = 75
        assert result.sdc_probability == 0.25
        assert result.benign_probability == 0.75
        assert result.probability(CRASHED) == 0.0

    def test_margin_of_error(self):
        result = CampaignResult()
        result.counts[SDC] = 50
        result.counts[BENIGN] = 50
        margin = result.margin_of_error(SDC)
        assert margin == pytest.approx(1.96 * (0.25 / 100) ** 0.5, rel=1e-3)

    def test_empty_result(self):
        result = CampaignResult()
        assert result.sdc_probability == 0.0
        assert result.margin_of_error() == 0.0

    def test_merge(self):
        a = CampaignResult()
        a.counts[SDC] = 10
        b = CampaignResult()
        b.counts[SDC] = 5
        b.counts[BENIGN] = 5
        merged = a.merge(b)
        assert merged.counts[SDC] == 15
        assert merged.total == 20
