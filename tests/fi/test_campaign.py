"""Fault injection campaigns: sampling, classification, statistics."""

import random

import pytest

from repro.fi import (
    BENIGN,
    CRASHED,
    OUTCOMES,
    SDC,
    CampaignResult,
    FaultInjector,
    run_parallel_campaign,
)
from repro.ir import I32, FunctionBuilder, Module
from repro.stats import wilson_confidence
from tests.conftest import build_straightline_module, cached_module


def build_constant_output_module(n: int = 8) -> Module:
    """A program whose output is a constant: SDC probability exactly 0.

    Injectable values feed only dead stores and address arithmetic, so
    every fault lands as benign, crash, or hang — never SDC.
    """
    module = Module("deadstore")
    f = FunctionBuilder(module, "main")
    a = f.local("a", I32, init=5)
    arr = f.array("arr", I32, n)
    f.for_range(0, n, lambda i: arr.__setitem__(i, a.get() * 2))
    f.out(7)
    f.done()
    return module.finalize()


@pytest.fixture(scope="module")
def injector():
    return FaultInjector(cached_module("pathfinder"))


class TestSampling:
    def test_samples_weighted_by_execution(self, injector):
        rng = random.Random(0)
        counts = {}
        for _ in range(2000):
            injection = injector.sample_injection(rng)
            counts[injection.iid] = counts.get(injection.iid, 0) + 1
        # The hottest instruction should be sampled far more often than
        # a coldest one, roughly proportional to dynamic counts.
        by_count = sorted(
            zip(injector.target_iids, injector.target_counts),
            key=lambda pair: pair[1],
        )
        cold_iid, cold_n = by_count[0]
        hot_iid, hot_n = by_count[-1]
        assert hot_n > 2 * cold_n  # precondition for the check below
        assert counts.get(hot_iid, 0) > counts.get(cold_iid, 0)

    def test_occurrence_in_range(self, injector):
        rng = random.Random(1)
        for _ in range(200):
            injection = injector.sample_injection(rng)
            index = injector.target_iids.index(injection.iid)
            assert 1 <= injection.occurrence <= injector.target_counts[index]

    def test_bit_in_register_width(self, injector):
        rng = random.Random(2)
        for _ in range(200):
            injection = injector.sample_injection(rng)
            bits = injector.module.instruction(injection.iid).type.bits
            assert 0 <= injection.bit < bits

    def test_targets_all_have_users_and_counts(self, injector):
        for iid in injector.target_iids:
            inst = injector.module.instruction(iid)
            assert inst.has_result
            assert inst.users

    def test_targeted_injection_rejects_bad_iid(self, injector):
        rng = random.Random(3)
        store_iid = next(
            inst.iid for inst in injector.module.instructions()
            if inst.opcode == "store"
        )
        with pytest.raises(ValueError):
            injector.injection_for(store_iid, rng)


class TestCampaigns:
    def test_counts_sum_to_n(self, injector):
        result = injector.campaign(100, seed=11)
        assert result.total == 100
        assert set(result.counts) == set(OUTCOMES)

    def test_campaign_deterministic_per_seed(self, injector):
        a = injector.campaign(100, seed=5)
        b = injector.campaign(100, seed=5)
        assert a.counts == b.counts

    def test_different_seeds_differ(self, injector):
        a = injector.campaign(150, seed=5)
        b = injector.campaign(150, seed=6)
        assert a.counts != b.counts  # overwhelmingly likely

    def test_all_outcome_classes_occur(self, injector):
        result = injector.campaign(400, seed=7)
        assert result.counts[SDC] > 0
        assert result.counts[CRASHED] > 0
        assert result.counts[BENIGN] > 0

    def test_per_instruction_campaign(self, injector):
        iids = injector.eligible_iids()[:5]
        results = injector.per_instruction_campaign(iids, 30, seed=1)
        assert set(results) == set(iids)
        for result in results.values():
            assert result.total == 30

    def test_straightline_fault_free_benign_rate(self, straightline_module):
        injector = FaultInjector(straightline_module)
        result = injector.campaign(200, seed=1)
        # A multiply feeding the output: most bit flips must be SDCs.
        assert result.sdc_probability > 0.5


class TestRunSpan:
    def test_spans_compose_to_campaign(self, injector):
        """[0,n) in one span == two adjacent spans merged == campaign."""
        whole = injector.campaign(60, seed=4)
        first = injector.run_span(0, 25, 4)
        second = injector.run_span(25, 35, 4)
        assert first.merge(second).counts == whole.counts

    def test_span_independent_of_execution_order(self, injector):
        forward = injector.run_span(10, 20, 4)
        injector.run_span(0, 10, 4)  # running another span in between...
        again = injector.run_span(10, 20, 4)  # ...must not change it
        assert forward.counts == again.counts


class TestEarlyStopping:
    def test_zero_sdc_program_stops_before_max_runs(self):
        injector = FaultInjector(build_constant_output_module())
        result = run_parallel_campaign(
            4000, seed=1, injector=injector,
            ci_halfwidth=0.02, round_size=100, min_runs=100,
        )
        assert result.stopped_early
        assert result.total < 4000
        assert result.sdc_probability == 0.0

    def test_high_sdc_program_stops_and_ci_covers_full_estimate(self):
        module = build_straightline_module()
        injector = FaultInjector(module)
        full = injector.campaign(800, seed=1)
        stopped = run_parallel_campaign(
            800, seed=1, injector=injector,
            ci_halfwidth=0.10, round_size=50, min_runs=100,
        )
        assert stopped.stopped_early
        assert stopped.total < full.total
        interval = wilson_confidence(stopped.counts[SDC], stopped.total)
        assert interval.low <= full.sdc_probability <= interval.high

    def test_stopped_prefix_matches_serial_prefix(self, injector):
        """The early-stopped runs are exactly the serial prefix [0, n)."""
        stopped = run_parallel_campaign(
            2000, seed=1, injector=injector,
            ci_halfwidth=0.05, round_size=100, min_runs=100,
        )
        prefix = injector.run_span(0, stopped.total, 1)
        assert stopped.counts == prefix.counts

    def test_no_stopping_without_halfwidth(self, injector):
        result = run_parallel_campaign(120, seed=2, injector=injector)
        assert result.total == 120
        assert not result.stopped_early
        assert result.rounds == 1

    def test_workers1_uses_serial_path(self, injector):
        """workers=1 must not spawn a pool and must match campaign()."""
        result = run_parallel_campaign(
            100, seed=11, injector=injector, workers=1,
        )
        assert result.counts == injector.campaign(100, seed=11).counts
        assert result.workers == 1
        assert not result.degraded

    def test_min_runs_respected(self):
        injector = FaultInjector(build_constant_output_module())
        result = run_parallel_campaign(
            1000, seed=1, injector=injector,
            ci_halfwidth=0.5, round_size=50, min_runs=300,
        )
        # Interval is tight immediately, but the floor holds it open.
        assert result.total >= 300


class TestConcurrencyRegression:
    """Two concurrent chunks over the same Module must not interfere.

    The engine keeps all per-run state in per-run ``_State``/frames and
    the module/layout stay immutable after finalize; these tests pin
    that, since fork-based workers and interleaved chunks silently
    corrupt counts if any run state leaks into shared objects.
    """

    def test_interleaved_injectors_match_isolated_runs(self):
        module = cached_module("pathfinder")
        a = FaultInjector(module)
        b = FaultInjector(module)
        interleaved_a = CampaignResult()
        interleaved_b = CampaignResult()
        for start in range(0, 40, 10):
            interleaved_a = interleaved_a.merge(a.run_span(start, 10, 21))
            interleaved_b = interleaved_b.merge(b.run_span(start, 10, 22))
        assert interleaved_a.counts == \
            FaultInjector(module).campaign(40, seed=21).counts
        assert interleaved_b.counts == \
            FaultInjector(module).campaign(40, seed=22).counts

    def test_campaign_leaves_engine_state_clean(self, injector):
        golden_before = injector.engine.run()
        injector.campaign(50, seed=13)
        golden_after = injector.engine.run()
        assert golden_after.outcome == golden_before.outcome
        assert golden_after.outputs == golden_before.outputs
        assert golden_after.dynamic_count == golden_before.dynamic_count

    def test_shared_engine_injectors_agree(self):
        module = cached_module("pathfinder")
        shared = FaultInjector(module)
        borrowing = FaultInjector(module, shared.engine)
        assert borrowing.campaign(40, seed=5).counts == \
            shared.campaign(40, seed=5).counts


class TestCampaignResult:
    def test_probabilities(self):
        result = CampaignResult()
        result.counts[SDC] = 25
        result.counts[BENIGN] = 75
        assert result.sdc_probability == 0.25
        assert result.benign_probability == 0.75
        assert result.probability(CRASHED) == 0.0

    def test_margin_of_error(self):
        result = CampaignResult()
        result.counts[SDC] = 50
        result.counts[BENIGN] = 50
        margin = result.margin_of_error(SDC)
        assert margin == pytest.approx(1.96 * (0.25 / 100) ** 0.5, rel=1e-3)

    def test_empty_result(self):
        result = CampaignResult()
        assert result.sdc_probability == 0.0
        assert result.margin_of_error() == 0.0

    def test_merge(self):
        a = CampaignResult()
        a.counts[SDC] = 10
        b = CampaignResult()
        b.counts[SDC] = 5
        b.counts[BENIGN] = 5
        merged = a.merge(b)
        assert merged.counts[SDC] == 15
        assert merged.total == 20
