"""The benchmark suite: structure, determinism, correctness spot checks."""

import pytest

from repro.bench import (
    BENCHMARK_NAMES,
    all_benchmarks,
    build_module,
    get_benchmark,
)
from repro.interp import ExecutionEngine
from repro.ir.instructions import Branch, Load, Output, Store
from tests.conftest import cached_module


class TestRegistry:
    def test_eleven_benchmarks(self):
        assert len(BENCHMARK_NAMES) == 11
        assert len(all_benchmarks()) == 11

    def test_metadata_complete(self):
        for spec in all_benchmarks():
            assert spec.suite
            assert spec.area
            assert spec.input_desc

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            get_benchmark("spec2017")

    def test_suites_are_diverse(self):
        suites = {spec.suite for spec in all_benchmarks()}
        assert len(suites) >= 5  # Table I: many suites/authors


class TestConstruction:
    def test_builds_and_runs(self, benchmark_name):
        module = cached_module(benchmark_name)
        golden = ExecutionEngine(module).golden()
        assert golden.outputs, "benchmark must produce program output"
        assert golden.dynamic_count > 100

    def test_deterministic_build(self, benchmark_name):
        from repro.ir import print_module

        a = build_module(benchmark_name, "test")
        b = build_module(benchmark_name, "test")
        assert print_module(a) == print_module(b)

    def test_deterministic_execution(self, benchmark_name):
        module = cached_module(benchmark_name)
        engine = ExecutionEngine(module)
        assert engine.run().outputs == engine.run().outputs

    def test_scales_grow(self, benchmark_name):
        small = ExecutionEngine(build_module(benchmark_name, "test"))
        large = ExecutionEngine(build_module(benchmark_name, "small"))
        assert (
            large.golden().dynamic_count > small.golden().dynamic_count
        )

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            build_module("pathfinder", "huge")

    def test_has_memory_and_control_structure(self, benchmark_name):
        """Every benchmark must exercise all three model levels:
        data flow, control flow (conditional branches), and memory."""
        module = cached_module(benchmark_name)
        instructions = list(module.instructions())
        assert any(isinstance(i, Store) for i in instructions)
        assert any(isinstance(i, Load) for i in instructions)
        assert any(
            isinstance(i, Branch) and i.is_conditional for i in instructions
        )
        assert any(isinstance(i, Output) for i in instructions)


class TestKnownResults:
    """Spot checks of algorithmic correctness against Python oracles."""

    def test_nw_alignment_score(self):
        from repro.bench.common import Lcg
        from repro.bench.nw import _GAP, _MATCH, _MISMATCH

        module = cached_module("nw")
        outputs = ExecutionEngine(module).golden().outputs
        # Recompute the DP in Python.
        length = 8
        rng = Lcg(5)
        seq_a = rng.ints(length, 0, 3)
        seq_b = rng.ints(length, 0, 3)
        width = length + 1
        dp = [[0] * width for _ in range(width)]
        for i in range(1, width):
            dp[i][0] = i * _GAP
            dp[0][i] = i * _GAP
        for i in range(1, width):
            for j in range(1, width):
                match = _MATCH if seq_a[i - 1] == seq_b[j - 1] else _MISMATCH
                dp[i][j] = max(
                    dp[i - 1][j - 1] + match,
                    dp[i - 1][j] + _GAP,
                    dp[i][j - 1] + _GAP,
                )
        assert outputs[0] == str(dp[length][length])

    def test_pathfinder_min_cost(self):
        from repro.bench.common import Lcg

        module = cached_module("pathfinder")
        outputs = ExecutionEngine(module).golden().outputs
        rows, cols = 6, 10
        rng = Lcg(42)
        wall = rng.ints(rows * cols, 0, 9)
        frontier = wall[:cols]
        for r in range(1, rows):
            new = []
            for j in range(cols):
                best = min(
                    frontier[max(j - 1, 0)],
                    frontier[j],
                    frontier[min(j + 1, cols - 1)],
                )
                new.append(wall[r * cols + j] + best)
            frontier = new
        assert outputs[0] == str(min(frontier))
        assert outputs[1] == str(sum(frontier))

    def test_bfs_depths_sane(self):
        module = cached_module("bfs_rodinia")
        outputs = ExecutionEngine(module).golden().outputs
        total = int(outputs[0])
        # Ring edges guarantee all 16 nodes reachable: depths sum > 0.
        assert total > 0

    def test_bfs_variants_agree_on_reachability(self):
        ExecutionEngine(cached_module("bfs_rodinia")).golden()
        parboil = ExecutionEngine(cached_module("bfs_parboil")).golden()
        # Different graphs/seeds — but both must visit all nodes.
        assert int(parboil.outputs[2]) == 16  # queue tail == nodes

    def test_blackscholes_prices_positive(self):
        outputs = ExecutionEngine(cached_module("blackscholes")).golden().outputs
        total = float(outputs[-1])
        assert total > 0.0

    def test_hotspot_temperatures_in_range(self):
        outputs = ExecutionEngine(cached_module("hotspot")).golden().outputs
        hottest = float(outputs[0])
        assert 50.0 < hottest < 120.0

    def test_lulesh_energy_conserved_roughly(self):
        outputs = ExecutionEngine(cached_module("lulesh")).golden().outputs
        total_energy = float(outputs[0])
        assert 0.0 < total_energy < 50.0

    def test_sad_nonnegative(self):
        outputs = ExecutionEngine(cached_module("sad")).golden().outputs
        assert int(outputs[0]) >= 0
        assert int(outputs[2]) >= 0
