"""Golden-output regression pins for the benchmark suite.

Benchmarks are deterministic: any change to IR semantics, the DSL
lowering, data generation, or the interpreter that alters program
behaviour shows up here immediately.  If a change is *intentional*,
update the pins — and expect previously recorded FI/model numbers in
EXPERIMENTS.md to shift too.
"""

import pytest

from repro.bench import build_module
from repro.interp import ExecutionEngine
from tests.conftest import cached_module

#: (benchmark, first output, dynamic instruction count) at test scale.
GOLDEN = {
    "libquantum": ("16", 1782),
    "blackscholes": ("-3.326e-07", 414),
    "sad": ("1551", 24598),
    "bfs_parboil": ("46", 1426),
    "hercules": ("-0.00636", 5069),
    "lulesh": ("7.169", 3236),
    "puremd": ("-5.451", 4085),
    "nw": ("24", 3227),
    "pathfinder": ("8", 2675),
    "hotspot": ("77", 5500),
    "bfs_rodinia": ("46", 3797),
}


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_golden_pin(name):
    golden = ExecutionEngine(cached_module(name)).golden()
    expected_first, expected_dynamic = GOLDEN[name]
    assert golden.outputs[0] == expected_first
    assert golden.dynamic_count == expected_dynamic


@pytest.mark.parametrize("name", ["pathfinder", "hercules", "libquantum"])
def test_input_seed_changes_output_not_structure(name):
    base = build_module(name, "test", input_seed=0)
    varied = build_module(name, "test", input_seed=5)
    assert base.num_instructions == varied.num_instructions  # same code
    base_out = ExecutionEngine(base).golden().outputs
    varied_out = ExecutionEngine(varied).golden().outputs
    assert base_out != varied_out  # different data


def test_input_seed_deterministic():
    from repro.ir import print_module

    a = build_module("hotspot", "test", input_seed=3)
    b = build_module("hotspot", "test", input_seed=3)
    assert print_module(a) == print_module(b)
