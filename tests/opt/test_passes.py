"""Optimizer passes: behavior preservation and transformation effects."""

import pytest

from repro.bench import BENCHMARK_NAMES
from repro.interp import ExecutionEngine
from repro.ir import I32, FunctionBuilder, Module, parse_module, print_module
from repro.ir.instructions import Alloca, Phi
from repro.opt import (
    eliminate_dead_code,
    fold_constants,
    optimize,
    promotable_allocas,
    promote_to_registers,
    simplify_cfg,
)
from tests.conftest import cached_module


def outputs_of(module: Module) -> list[str]:
    return ExecutionEngine(module).golden().outputs


class TestConstantFolding:
    def test_folds_arithmetic(self):
        module = Module("m")
        f = FunctionBuilder(module, "main")
        f.out((f.c(6) * 7) + 0)
        f.done()
        module.finalize()
        folded = fold_constants(module.main)
        module.finalize()
        assert folded == 2
        assert outputs_of(module) == ["42"]

    def test_preserves_division_trap(self):
        module = Module("m")
        f = FunctionBuilder(module, "main")
        f.out(f.c(1) / 0)
        f.done()
        module.finalize()
        assert fold_constants(module.main) == 0  # trap kept for runtime

    def test_folds_chains(self):
        module = Module("m")
        f = FunctionBuilder(module, "main")
        value = f.c(1)
        for _ in range(6):
            value = value + 1
        f.out(value)
        f.done()
        module.finalize()
        assert fold_constants(module.main) == 6
        module.finalize()
        assert outputs_of(module) == ["7"]


class TestDce:
    def test_removes_unused(self):
        module = Module("m")
        f = FunctionBuilder(module, "main")
        _dead = f.c(1) + 2
        _dead2 = _dead * 3
        f.out(f.c(9))
        f.done()
        module.finalize()
        removed = eliminate_dead_code(module.main)
        module.finalize()
        assert removed == 2
        assert outputs_of(module) == ["9"]

    def test_keeps_stores_and_outputs(self, accumulator_module):
        from repro.protection import clone_module

        clone = clone_module(accumulator_module)
        before = outputs_of(clone)
        for function in clone.functions.values():
            eliminate_dead_code(function)
        clone.finalize()
        assert outputs_of(clone) == before


class TestSimplifyCfg:
    def test_folds_constant_branch(self):
        module = Module("m")
        f = FunctionBuilder(module, "main")
        f.if_(f.c(1) == 1, lambda: f.out(f.c(10)), lambda: f.out(f.c(20)))
        f.done()
        module.finalize()
        fold_constants(module.main)
        rewrites = simplify_cfg(module.main)
        module.finalize()
        assert rewrites > 0
        assert outputs_of(module) == ["10"]
        # The dead arm is gone entirely.
        assert module.num_instructions < 8


class TestMem2Reg:
    def test_promotes_scalars_not_arrays(self, accumulator_module):
        from repro.protection import clone_module

        clone = clone_module(accumulator_module)
        candidates = promotable_allocas(clone.main)
        kinds = {c.count for c in candidates}
        assert kinds == {1}  # arrays are never promotable

    def test_inserts_loop_phis(self):
        module = Module("m")
        f = FunctionBuilder(module, "main")
        total = f.local("t", I32, init=0)
        f.for_range(0, 5, lambda i: total.set(total.get() + i))
        f.out(total.get())
        f.done()
        module.finalize()
        promoted = promote_to_registers(module.main)
        module.finalize()
        assert promoted >= 2  # the loop counter and the accumulator
        phis = [i for i in module.instructions() if isinstance(i, Phi)]
        assert phis, "loop-carried variables need phis"
        assert outputs_of(module) == ["10"]

    def test_no_allocas_left_for_scalars(self):
        module = Module("m")
        f = FunctionBuilder(module, "main")
        v = f.local("v", I32, init=3)
        v.set(v.get() * 2)
        f.out(v.get())
        f.done()
        module.finalize()
        promote_to_registers(module.main)
        module.finalize()
        assert not any(
            isinstance(i, Alloca) for i in module.instructions()
        )
        assert outputs_of(module) == ["6"]


class TestPipeline:
    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_o2_preserves_all_benchmarks(self, name):
        module = cached_module(name)
        optimized, report = optimize(module, 2)
        assert outputs_of(optimized) == outputs_of(module)
        assert report.slots_promoted > 0
        assert report.after_instructions < report.before_instructions

    def test_o0_is_identity_clone(self, pathfinder_module):
        clone, report = optimize(pathfinder_module, 0)
        assert clone is not pathfinder_module
        assert report.after_instructions == report.before_instructions

    def test_input_not_mutated(self, pathfinder_module):
        before = print_module(pathfinder_module)
        optimize(pathfinder_module, 2)
        assert print_module(pathfinder_module) == before

    def test_bad_level_rejected(self, pathfinder_module):
        with pytest.raises(ValueError):
            optimize(pathfinder_module, 3)

    def test_o2_round_trips_through_text(self, pathfinder_module):
        optimized, _report = optimize(pathfinder_module, 2)
        text = print_module(optimized)
        assert "phi" in text
        reparsed = parse_module(text)
        assert outputs_of(reparsed) == outputs_of(optimized)

    def test_o2_reduces_dynamic_count(self, pathfinder_module):
        optimized, _report = optimize(pathfinder_module, 2)
        assert (
            ExecutionEngine(optimized).golden().dynamic_count
            < ExecutionEngine(pathfinder_module).golden().dynamic_count
        )


class TestModelOnOptimizedCode:
    def test_fi_and_model_run_on_o2(self):
        from repro.core import Trident
        from repro.fi import FaultInjector
        from repro.profiling import ProfilingInterpreter

        module, _ = optimize(cached_module("hotspot"), 2)
        profile, outputs = ProfilingInterpreter(module).run()
        injector = FaultInjector(module)
        assert outputs == injector.golden.outputs
        campaign = injector.campaign(200, seed=1)
        model = Trident(module, profile)
        predicted = model.overall_sdc(samples=200, seed=1)
        assert 0.0 <= predicted <= 1.0
        assert abs(predicted - campaign.sdc_probability) < 0.25

    def test_phi_faults_injectable(self):
        from repro.fi import FaultInjector
        from repro.interp.engine import Injection

        module, _ = optimize(cached_module("pathfinder"), 2)
        injector = FaultInjector(module)
        phi = next(
            i for i in module.instructions() if isinstance(i, Phi)
        )
        assert phi.iid in injector.eligible_iids()
        result = injector.engine.run(Injection(phi.iid, 1, 30))
        assert result.outcome in ("ok", "crash", "hang")
