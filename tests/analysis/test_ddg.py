"""Def-use path enumeration (static data-dependent sequences)."""

from repro.analysis import (
    TERMINAL_BRANCH,
    TERMINAL_OUTPUT,
    TERMINAL_STORE,
    PathEnumerator,
    paths_from_instruction,
    sequence_of,
)
from repro.ir import I32, FunctionBuilder, Module
from repro.ir.instructions import BinOp, ICmp, Load


def build_fig2b_module() -> Module:
    """The Fig. 2b shape: load -> add -> cmp -> branch."""
    module = Module("fig2b")
    f = FunctionBuilder(module, "main")
    counter = f.local("c", I32, init=-5)

    def body():
        counter.set(counter.get() + 1)

    f.while_(lambda: counter.get() < 0, body)
    f.out(counter.get())
    f.done()
    return module.finalize()


class TestSequences:
    def test_sequence_ends_at_branch(self):
        module = build_fig2b_module()
        load = next(i for i in module.instructions()
                    if isinstance(i, Load) and
                    any(isinstance(u, ICmp) for u in i.users))
        seq = sequence_of(load)
        assert seq[0] is load
        assert seq[-1].opcode == "br"

    def test_paths_terminate_at_branch(self):
        module = build_fig2b_module()
        load = next(i for i in module.instructions()
                    if isinstance(i, Load) and
                    any(isinstance(u, ICmp) for u in i.users))
        paths = paths_from_instruction(module, load)
        kinds = {p.terminal for p in paths}
        assert TERMINAL_BRANCH in kinds

    def test_paths_from_store_value_chain(self):
        module = Module("m")
        f = FunctionBuilder(module, "main")
        arr = f.array("a", I32, 2)
        v = f.c(1) + 2
        arr[f.c(0)] = v * 3
        f.out(arr[f.c(0)])
        f.done()
        module.finalize()
        add = next(i for i in module.instructions()
                   if isinstance(i, BinOp) and i.op == "add")
        paths = paths_from_instruction(module, add)
        assert any(p.terminal == TERMINAL_STORE for p in paths)

    def test_dead_value(self):
        module = Module("m")
        f = FunctionBuilder(module, "main")
        dead = f.c(1) + 2  # never used
        f.out(f.c(0))
        f.done()
        module.finalize()
        paths = paths_from_instruction(module, dead.value)
        assert paths == [] or all(p.terminal == "dead" for p in paths)

    def test_output_terminal(self):
        module = Module("m")
        f = FunctionBuilder(module, "main")
        f.out(f.c(1) + 2)
        f.done()
        module.finalize()
        add = next(i for i in module.instructions() if isinstance(i, BinOp))
        paths = paths_from_instruction(module, add)
        assert [p.terminal for p in paths] == [TERMINAL_OUTPUT]

    def test_interprocedural_through_call(self):
        module = Module("m")
        helper = FunctionBuilder(module, "double", [I32], ["x"], I32)
        helper.ret(helper.arg(0) * 2)
        helper.done()
        f = FunctionBuilder(module, "main")
        result = f.call("double", [f.c(5) + 1], I32)
        f.out(result)
        f.done()
        module.finalize()
        add = next(i for i in module.instructions()
                   if isinstance(i, BinOp) and i.op == "add")
        paths = paths_from_instruction(module, add)
        # Path must cross into double() and come back to main's output.
        assert any(p.terminal == TERMINAL_OUTPUT for p in paths)

    def test_max_paths_cap(self):
        module = Module("m")
        f = FunctionBuilder(module, "main")
        v = f.c(1)
        # Wide fan-out: the same value used by many adds.
        for _ in range(20):
            f.out(v + 1)
        f.done()
        module.finalize()
        enumerator = PathEnumerator(module, max_paths=5)
        const_users = module.instructions()[0]
        paths = enumerator.paths_from(const_users)
        assert len(paths) <= 5
