"""Immediate post-dominators checked against a reverse-CFG dominator oracle.

``postdominators()`` feeds the batch tier's reconvergence targets, so a
wrong answer silently corrupts lane merges.  The oracle here recomputes
the same map from first principles — dominators of the reversed CFG
rooted at the virtual exit — with an independent fixpoint, and the two
must agree on every hand-built shape, every benchmark function at O0/O2,
and a sample of fuzz-generator modules.
"""

import pytest

from repro.analysis import VIRTUAL_EXIT, postdominators
from repro.bench import BENCHMARK_NAMES, build_module
from repro.ir import Function, IRBuilder, const_int
from repro.ir.fuzz import FuzzCase, build_fuzz_module
from repro.opt.pipeline import optimize


def _oracle_ipdom(fn):
    """Immediate dominators of the reversed CFG, entered at VIRTUAL_EXIT."""
    nodes = list(fn.blocks) + [VIRTUAL_EXIT]
    # Reverse-CFG successor map: block -> its CFG predecessors, with the
    # virtual exit feeding every ret block.
    rsuccs = {node: [] for node in nodes}
    rsuccs[VIRTUAL_EXIT] = [
        block for block in fn.blocks if not list(block.successors)
    ]
    for block in fn.blocks:
        for succ in block.successors:
            rsuccs[succ].append(block)

    reach = {VIRTUAL_EXIT}
    work = [VIRTUAL_EXIT]
    while work:
        node = work.pop()
        for succ in rsuccs[node]:
            if succ not in reach:
                reach.add(succ)
                work.append(succ)

    rpreds = {node: [] for node in nodes}
    for node in nodes:
        for succ in rsuccs[node]:
            rpreds[succ].append(node)

    dom = {
        node: set(reach) if node in reach else set() for node in nodes
    }
    dom[VIRTUAL_EXIT] = {VIRTUAL_EXIT}
    changed = True
    while changed:
        changed = False
        for node in nodes:
            if node is VIRTUAL_EXIT or node not in reach:
                continue
            pred_sets = [dom[p] for p in rpreds[node] if p in reach]
            if not pred_sets:
                continue
            new_set = set.intersection(*pred_sets)
            new_set.add(node)
            if new_set != dom[node]:
                dom[node] = new_set
                changed = True

    ipdom = {}
    for block in fn.blocks:
        if block not in reach:
            ipdom[block] = None
            continue
        strict = dom[block] - {block}
        ipdom[block] = (
            max(strict, key=lambda d: len(dom[d])) if strict else None
        )
    return ipdom


def _check_function(fn):
    got = postdominators(fn)
    expected = _oracle_ipdom(fn)
    assert set(got) == set(fn.blocks)
    for block in fn.blocks:
        assert got[block] == expected[block], (
            f"{fn.name}:{block.name}: "
            f"got {got[block]!r}, oracle says {expected[block]!r}"
        )


# -- hand-built shapes ------------------------------------------------------


def test_diamond():
    fn = Function("diamond")
    entry = fn.add_block("entry")
    left = fn.add_block("left")
    right = fn.add_block("right")
    merge = fn.add_block("merge")
    b = IRBuilder(fn, entry)
    b.cond_br(b.icmp("eq", const_int(1), const_int(1)), left, right)
    IRBuilder(fn, left).br(merge)
    IRBuilder(fn, right).br(merge)
    IRBuilder(fn, merge).ret(None)
    assert postdominators(fn) == {
        entry: merge, left: merge, right: merge, merge: VIRTUAL_EXIT,
    }
    _check_function(fn)


def test_multi_exit_branch_has_virtual_exit_ipdom():
    fn = Function("multi_exit")
    entry = fn.add_block("entry")
    left = fn.add_block("left")
    right = fn.add_block("right")
    b = IRBuilder(fn, entry)
    b.cond_br(b.icmp("eq", const_int(0), const_int(1)), left, right)
    IRBuilder(fn, left).ret(None)
    IRBuilder(fn, right).ret(None)
    ipdom = postdominators(fn)
    # No real block catches both arms: the branch reconverges only at
    # the virtual exit (function-boundary divergence for the batch tier).
    assert ipdom[entry] is VIRTUAL_EXIT
    assert ipdom[left] is VIRTUAL_EXIT
    assert ipdom[right] is VIRTUAL_EXIT
    _check_function(fn)


def test_infinite_self_loop_maps_to_none():
    fn = Function("self_loop")
    entry = fn.add_block("entry")
    spin = fn.add_block("spin")
    done = fn.add_block("done")
    b = IRBuilder(fn, entry)
    b.cond_br(b.icmp("eq", const_int(0), const_int(1)), spin, done)
    IRBuilder(fn, spin).br(spin)
    IRBuilder(fn, done).ret(None)
    ipdom = postdominators(fn)
    # The self-loop never reaches an exit; neither does the branch that
    # can fall into it on one arm and return on the other?  No — entry
    # still reaches the exit through ``done``, so it gets a target, but
    # the spin block itself must map to None, not to an arbitrary block.
    assert ipdom[spin] is None
    assert ipdom[done] is VIRTUAL_EXIT
    assert ipdom[entry] is done
    _check_function(fn)


def test_unreachable_block_still_gets_postdominator():
    fn = Function("island")
    entry = fn.add_block("entry")
    IRBuilder(fn, entry).ret(None)
    island = fn.add_block("island")
    IRBuilder(fn, island).br(entry)
    # Post-dominance ignores entry-reachability: the island reaches the
    # exit through entry, so it has a well-defined immediate target.
    ipdom = postdominators(fn)
    assert ipdom[island] is entry
    _check_function(fn)


def test_loop_header_reconverges_at_exit_block():
    fn = Function("loop")
    entry = fn.add_block("entry")
    header = fn.add_block("header")
    body = fn.add_block("body")
    exit_ = fn.add_block("exit")
    IRBuilder(fn, entry).br(header)
    hb = IRBuilder(fn, header)
    hb.cond_br(hb.icmp("slt", const_int(0), const_int(10)), body, exit_)
    IRBuilder(fn, body).br(header)
    IRBuilder(fn, exit_).ret(None)
    ipdom = postdominators(fn)
    assert ipdom[header] is exit_
    assert ipdom[body] is header
    _check_function(fn)


# -- every benchmark function, both opt levels ------------------------------


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
@pytest.mark.parametrize("opt", [0, 2])
def test_benchmark_functions_match_oracle(name, opt):
    module = build_module(name, scale="test")
    if opt:
        module, _report = optimize(module, opt)
    for fn in module.functions.values():
        _check_function(fn)


# -- fuzz-generator CFGs ----------------------------------------------------


@pytest.mark.parametrize("seed", range(0, 40))
def test_fuzz_modules_match_oracle(seed):
    module = build_fuzz_module(FuzzCase(seed=seed))
    for fn in module.functions.values():
        _check_function(fn)
