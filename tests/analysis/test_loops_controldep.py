"""Natural loops, LT/NLT classification, and control dependence."""

from repro.analysis import ControlDependence, LoopInfo, find_back_edges, find_natural_loops
from repro.ir import (
    I32,
    Function,
    FunctionBuilder,
    IRBuilder,
    Module,
    const_int,
)
from repro.ir.instructions import Branch, Store


def build_loop_function() -> Function:
    fn = Function("loop")
    entry = fn.add_block("entry")
    header = fn.add_block("header")
    body = fn.add_block("body")
    exit_ = fn.add_block("exit")
    IRBuilder(fn, entry).br(header)
    hb = IRBuilder(fn, header)
    cond = hb.icmp("slt", const_int(0), const_int(10))
    hb.cond_br(cond, body, exit_)
    IRBuilder(fn, body).br(header)
    IRBuilder(fn, exit_).ret(None)
    return fn


class TestLoops:
    def test_back_edge_detected(self):
        fn = build_loop_function()
        entry, header, body, exit_ = fn.blocks
        assert find_back_edges(fn) == [(body, header)]

    def test_natural_loop_blocks(self):
        fn = build_loop_function()
        entry, header, body, exit_ = fn.blocks
        loops = find_natural_loops(fn)
        assert len(loops) == 1
        assert loops[0].header is header
        assert loops[0].blocks == {header, body}
        assert loops[0].exit_edges == [(header, exit_)]

    def test_loop_terminating_branch(self):
        fn = build_loop_function()
        header = fn.blocks[1]
        info = LoopInfo(fn)
        branch = header.terminator
        assert info.is_loop_terminating(branch)
        assert info.continue_direction(branch) is True  # true arm = body

    def test_non_loop_branch_is_nlt(self):
        module = Module("m")
        f = FunctionBuilder(module, "main")
        f.if_(f.c(1) < 2, lambda: f.out(f.c(1)))
        f.done()
        module.finalize()
        fn = module.main
        info = LoopInfo(fn)
        for block in fn.blocks:
            term = block.terminator
            if isinstance(term, Branch) and term.is_conditional:
                assert not info.is_loop_terminating(term)
                assert info.continue_direction(term) is None

    def test_dsl_loop_is_lt(self):
        module = Module("m")
        f = FunctionBuilder(module, "main")
        f.for_range(0, 10, lambda i: f.out(i))
        f.done()
        module.finalize()
        fn = module.main
        info = LoopInfo(fn)
        lt_branches = [
            block.terminator for block in fn.blocks
            if isinstance(block.terminator, Branch)
            and block.terminator.is_conditional
            and info.is_loop_terminating(block.terminator)
        ]
        assert len(lt_branches) == 1

    def test_nested_loops_found(self):
        module = Module("m")
        f = FunctionBuilder(module, "main")

        def outer(i):
            f.for_range(0, 3, lambda j: f.out(j), name="j")

        f.for_range(0, 3, outer, name="i")
        f.done()
        module.finalize()
        loops = find_natural_loops(module.main)
        assert len(loops) == 2
        sizes = sorted(len(l.blocks) for l in loops)
        assert sizes[0] < sizes[1]  # inner loop nested in outer

    def test_innermost_loop_of(self):
        module = Module("m")
        f = FunctionBuilder(module, "main")

        def outer(i):
            f.for_range(0, 3, lambda j: f.out(j), name="j")

        f.for_range(0, 3, outer, name="i")
        f.done()
        module.finalize()
        info = LoopInfo(module.main)
        inner = min(info.loops, key=lambda l: len(l.blocks))
        for block in inner.blocks:
            innermost = info.innermost_loop_of(block)
            assert innermost.blocks <= max(
                info.loops, key=lambda l: len(l.blocks)
            ).blocks


class TestControlDependence:
    def build_if_module(self):
        module = Module("m")
        f = FunctionBuilder(module, "main")
        arr = f.array("a", I32, 4)
        f.if_(f.c(1) < 2, lambda: arr.__setitem__(f.c(0), 1))
        f.out(arr[f.c(0)])
        f.done()
        return module.finalize()

    def _conditional_branch(self, fn):
        for block in fn.blocks:
            term = block.terminator
            if isinstance(term, Branch) and term.is_conditional:
                return term
        raise AssertionError("no conditional branch")

    def test_store_governed_by_branch(self):
        module = self.build_if_module()
        fn = module.main
        branch = self._conditional_branch(fn)
        cd = ControlDependence(fn)
        governed = cd.blocks_governed_by(branch)
        stores = [
            inst for block in governed for inst in block.instructions
            if isinstance(inst, Store)
        ]
        assert stores, "then-block store must be control dependent"

    def test_direction(self):
        module = self.build_if_module()
        fn = module.main
        branch = self._conditional_branch(fn)
        cd = ControlDependence(fn)
        then_block = branch.true_block
        assert cd.governing_direction(branch, then_block) is True

    def test_merge_block_not_governed(self):
        module = self.build_if_module()
        fn = module.main
        branch = self._conditional_branch(fn)
        cd = ControlDependence(fn)
        governed = cd.blocks_governed_by(branch)
        # The output block (post-dominates the branch) is not governed.
        output_block = fn.blocks[-1]
        assert output_block not in governed
