"""Dominators, post-dominators, and CFG utilities on hand-built CFGs."""

from repro.analysis import (
    VIRTUAL_EXIT,
    compute_dominators,
    compute_postdominators,
    exit_blocks,
    immediate_dominators,
    predecessor_map,
    reachable_blocks,
    reverse_postorder,
)
from repro.ir import Function, IRBuilder, const_int


def diamond() -> Function:
    r"""entry -> {left, right} -> merge -> ret."""
    fn = Function("diamond")
    entry = fn.add_block("entry")
    left = fn.add_block("left")
    right = fn.add_block("right")
    merge = fn.add_block("merge")
    b = IRBuilder(fn, entry)
    cond = b.icmp("eq", const_int(1), const_int(1))
    b.cond_br(cond, left, right)
    IRBuilder(fn, left).br(merge)
    IRBuilder(fn, right).br(merge)
    IRBuilder(fn, merge).ret(None)
    return fn


def loop() -> Function:
    """entry -> header <-> body; header -> exit."""
    fn = Function("loop")
    entry = fn.add_block("entry")
    header = fn.add_block("header")
    body = fn.add_block("body")
    exit_ = fn.add_block("exit")
    IRBuilder(fn, entry).br(header)
    hb = IRBuilder(fn, header)
    cond = hb.icmp("slt", const_int(0), const_int(10))
    hb.cond_br(cond, body, exit_)
    IRBuilder(fn, body).br(header)
    IRBuilder(fn, exit_).ret(None)
    return fn


class TestDominators:
    def test_diamond(self):
        fn = diamond()
        entry, left, right, merge = fn.blocks
        dom = compute_dominators(fn)
        assert dom[entry] == {entry}
        assert dom[left] == {entry, left}
        assert dom[right] == {entry, right}
        assert dom[merge] == {entry, merge}  # neither arm dominates merge

    def test_loop(self):
        fn = loop()
        entry, header, body, exit_ = fn.blocks
        dom = compute_dominators(fn)
        assert header in dom[body]
        assert header in dom[exit_]
        assert body not in dom[exit_]

    def test_immediate_dominators(self):
        fn = diamond()
        entry, left, right, merge = fn.blocks
        idom = immediate_dominators(fn)
        assert idom[entry] is None
        assert idom[left] is entry
        assert idom[merge] is entry

    def test_unreachable_block_empty(self):
        fn = diamond()
        island = fn.add_block("island")
        IRBuilder(fn, island).ret(None)
        dom = compute_dominators(fn)
        assert dom[island] == set()


class TestPostDominators:
    def test_diamond(self):
        fn = diamond()
        entry, left, right, merge = fn.blocks
        postdom = compute_postdominators(fn)
        assert merge in postdom[entry]
        assert merge in postdom[left]
        assert left not in postdom[entry]
        assert VIRTUAL_EXIT in postdom[entry]

    def test_loop_exit_postdominates(self):
        fn = loop()
        entry, header, body, exit_ = fn.blocks
        postdom = compute_postdominators(fn)
        assert exit_ in postdom[header]
        assert exit_ in postdom[body]
        assert body not in postdom[header]


class TestCfgUtils:
    def test_reachable(self):
        fn = diamond()
        island = fn.add_block("island")
        IRBuilder(fn, island).ret(None)
        reachable = reachable_blocks(fn)
        assert island not in reachable
        assert len(reachable) == 4

    def test_reverse_postorder_starts_at_entry(self):
        fn = loop()
        order = reverse_postorder(fn)
        assert order[0] is fn.entry
        # every edge u->v with v not a back-edge target appears in order
        positions = {b: i for i, b in enumerate(order)}
        entry, header, body, exit_ = fn.blocks
        assert positions[entry] < positions[header]
        assert positions[header] < positions[exit_]

    def test_predecessor_map(self):
        fn = diamond()
        entry, left, right, merge = fn.blocks
        preds = predecessor_map(fn)
        assert set(preds[merge]) == {left, right}
        assert preds[entry] == []

    def test_exit_blocks(self):
        fn = diamond()
        assert exit_blocks(fn) == [fn.blocks[-1]]
