"""Profile JSON round-trip."""

import json

import pytest

from repro.core import Trident
from repro.profiling.serialize import (
    FORMAT_VERSION,
    load_profile,
    profile_from_dict,
    profile_to_dict,
    save_profile,
)
from tests.conftest import cached_module, cached_profile


@pytest.fixture(scope="module")
def profile():
    return cached_profile("pathfinder")[0]


class TestRoundTrip:
    def test_dict_round_trip(self, profile):
        rebuilt = profile_from_dict(profile_to_dict(profile))
        assert rebuilt.inst_counts == profile.inst_counts
        assert rebuilt.branch_counts == profile.branch_counts
        assert rebuilt.operand_samples == profile.operand_samples
        assert rebuilt.mem_edges == profile.mem_edges
        assert rebuilt.store_reader_sets == profile.store_reader_sets
        assert rebuilt.silent_stores == profile.silent_stores
        assert rebuilt.dynamic_count == profile.dynamic_count
        assert (rebuilt.memdep_stats.pruned_fraction
                == profile.memdep_stats.pruned_fraction)

    def test_json_serializable(self, profile):
        text = json.dumps(profile_to_dict(profile))
        assert json.loads(text)["version"] == FORMAT_VERSION

    def test_file_round_trip(self, profile, tmp_path):
        path = tmp_path / "profile.json"
        save_profile(profile, path)
        rebuilt = load_profile(path)
        assert rebuilt.inst_counts == profile.inst_counts

    def test_model_from_reloaded_profile_identical(self, profile, tmp_path):
        """A model built from a saved profile predicts identically."""
        module = cached_module("pathfinder")
        path = tmp_path / "profile.json"
        save_profile(profile, path)
        original = Trident(module, profile)
        rebuilt = Trident(module, load_profile(path))
        for iid in original.eligible[:40]:
            assert rebuilt.instruction_sdc(iid) == pytest.approx(
                original.instruction_sdc(iid)
            )

    def test_version_check(self, profile):
        data = profile_to_dict(profile)
        data["version"] = 99
        with pytest.raises(ValueError, match="version"):
            profile_from_dict(data)
