"""The profiling interpreter and the profile it produces."""

import pytest

from repro.interp import ExecutionEngine
from repro.ir import I32, FunctionBuilder, Module
from repro.ir.instructions import Branch, Store
from repro.profiling import ProfilingInterpreter
from tests.conftest import cached_module, cached_profile


class TestAgreementWithEngine:
    def test_outputs_match(self, accumulator_module):
        profile, outputs = ProfilingInterpreter(accumulator_module).run()
        golden = ExecutionEngine(accumulator_module).golden()
        assert outputs == golden.outputs

    def test_dynamic_count_matches(self, accumulator_module):
        profile, _ = ProfilingInterpreter(accumulator_module).run()
        golden = ExecutionEngine(accumulator_module).golden()
        assert profile.dynamic_count == golden.dynamic_count

    def test_instruction_counts_match(self, accumulator_module):
        profile, _ = ProfilingInterpreter(accumulator_module).run()
        golden = ExecutionEngine(accumulator_module).golden()
        assert profile.inst_counts == golden.instruction_counts()

    @pytest.mark.parametrize("name", ["pathfinder", "nw", "libquantum"])
    def test_benchmarks_agree(self, name):
        module = cached_module(name)
        profile, outputs = cached_profile(name)
        golden = ExecutionEngine(module).golden()
        assert outputs == golden.outputs
        assert profile.dynamic_count == golden.dynamic_count


class TestBranchProfile:
    def test_biased_loop_branch(self):
        module = Module("m")
        f = FunctionBuilder(module, "main")
        f.for_range(0, 100, lambda i: f.out(i))
        f.done()
        module.finalize()
        profile, _ = ProfilingInterpreter(module).run()
        branch = next(
            inst for inst in module.instructions()
            if isinstance(inst, Branch) and inst.is_conditional
        )
        # Loop continues 100 times, exits once: P(taken) = 100/101.
        assert profile.branch_taken_probability(branch.iid) == pytest.approx(
            100 / 101
        )

    def test_unexecuted_branch_defaults_half(self, accumulator_module):
        profile, _ = ProfilingInterpreter(accumulator_module).run()
        assert profile.branch_taken_probability(99999) == 0.5

    def test_direction_probability_complements(self, pathfinder_profile):
        for iid in list(pathfinder_profile.branch_counts):
            taken = pathfinder_profile.branch_direction_probability(iid, True)
            not_taken = pathfinder_profile.branch_direction_probability(
                iid, False
            )
            assert taken + not_taken == pytest.approx(1.0)


class TestMemoryDependencies:
    def build_producer_consumer(self, n=8):
        module = Module("m")
        f = FunctionBuilder(module, "main")
        arr = f.array("a", I32, n)
        f.for_range(0, n, lambda i: arr.__setitem__(i, i))
        total = f.local("t", I32, init=0)
        f.for_range(0, n, lambda i: total.set(total.get() + arr[i]))
        f.out(total.get())
        f.done()
        return module.finalize()

    def test_store_load_edge_exists(self):
        module = self.build_producer_consumer()
        profile, _ = ProfilingInterpreter(module).run()
        stores = [i for i in module.instructions() if isinstance(i, Store)]
        array_store = max(
            stores, key=lambda s: profile.store_instances.get(s.iid, 0)
        )
        edges = profile.loads_reading(array_store.iid)
        assert edges, "array store must have a reader"
        # Every instance of the array store is read exactly once.
        assert any(weight == pytest.approx(1.0) for _l, weight in edges)

    def test_read_fraction_full(self):
        module = self.build_producer_consumer()
        profile, _ = ProfilingInterpreter(module).run()
        stores = [i for i in module.instructions() if isinstance(i, Store)]
        array_store = max(
            stores, key=lambda s: profile.store_instances.get(s.iid, 0)
        )
        assert profile.store_read_fraction(array_store.iid) == pytest.approx(1.0)

    def test_dead_store_has_no_readers(self):
        module = Module("m")
        f = FunctionBuilder(module, "main")
        arr = f.array("a", I32, 4)
        f.for_range(0, 4, lambda i: arr.__setitem__(i, i))  # never read
        f.out(f.c(0))
        f.done()
        module.finalize()
        profile, _ = ProfilingInterpreter(module).run()
        store = next(
            i for i in module.instructions()
            if isinstance(i, Store) and profile.store_instances.get(i.iid, 0) >= 4
        )
        assert profile.loads_reading(store.iid) == []
        assert profile.store_read_fraction(store.iid) == 0.0

    def test_pruning_collapses_loop_dependencies(self):
        module = self.build_producer_consumer(n=32)
        profile, _ = ProfilingInterpreter(module).run()
        stats = profile.memdep_stats
        assert stats.dynamic_dependencies > stats.static_edges
        assert stats.pruned_fraction > 0.5

    def test_benchmark_pruning_positive(self, benchmark_name):
        profile, _ = cached_profile(benchmark_name)
        assert profile.memdep_stats.pruned_fraction > 0.0


class TestSamplesAndCrashProbabilities:
    def test_operand_samples_capped(self, pathfinder_profile):
        for samples in pathfinder_profile.operand_samples.values():
            assert len(samples) <= 32

    def test_crash_probability_high_for_sparse_space(self, pathfinder_profile):
        # Valid data is tiny inside a 64-bit space: most single-bit
        # address flips must crash.
        probs = [
            pathfinder_profile.crash_probability(iid)
            for iid in pathfinder_profile.crash_prob_samples
        ]
        assert probs
        assert all(p > 0.6 for p in probs)

    def test_execution_probability_clamped(self, pathfinder_profile):
        iids = list(pathfinder_profile.inst_counts)
        hot = max(iids, key=pathfinder_profile.count)
        cold = min(iids, key=pathfinder_profile.count)
        assert pathfinder_profile.execution_probability(hot, cold) == 1.0
        assert 0.0 <= pathfinder_profile.execution_probability(cold, hot) <= 1.0
