"""Fixtures for the query-pipeline suite."""

from __future__ import annotations

import pytest

from repro.cache import configure_cache


@pytest.fixture
def fresh_default_cache(tmp_path):
    """Swap the process-wide artifact cache for an empty per-test one."""
    cache = configure_cache(tmp_path / "default-cache")
    yield cache
    configure_cache(None)
