"""The incremental-analysis acceptance bar of the query pipeline.

Three guarantees, from strongest to broadest:

* function granularity — mutating one function of a two-function
  module leaves every query of the untouched function served from the
  shared stores (zero misses);
* bit-identity — on every figure-harness benchmark, an incremental
  re-model after selective duplication and after an opt-pipeline run
  agrees bit-for-bit with a cold rebuild of the same module;
* speed — the warm protection-loop re-model is at least 2x faster
  than the cold rebuild it replaces.
"""

from __future__ import annotations

import time

import pytest

from repro.bench import build_module
from repro.cache.fingerprint import function_fingerprint
from repro.core.simple_models import create_model
from repro.ir import I32, FunctionBuilder, Module
from repro.opt.pipeline import optimize
from repro.profiling import ProfilingInterpreter
from repro.protection.duplication import (
    duplicable_iids,
    duplicate_instructions,
)
from repro.query import reset_query_stores
from tests.conftest import cached_module, cached_profile


def _two_function_module(variant: int) -> Module:
    """main + helper; ``variant`` rewrites *helper's body only*.

    Both variants return the same values from helper, so main's
    dynamic behavior — and therefore its profile slice — is identical;
    only helper's fingerprint changes between variants.
    """
    module = Module(f"twofn_v{variant}")
    g = FunctionBuilder(module, "helper", arg_types=[I32],
                        arg_names=["x"], return_type=I32)
    x = g.arg(0)
    if variant == 0:
        g.ret(x * 3 + 1)
    else:
        g.ret(x * 3 + 2 - 1)  # same values, different instructions
    g.done()

    f = FunctionBuilder(module, "main")
    n = 8
    arr = f.array("arr", I32, n)
    f.for_range(0, n, lambda i: arr.__setitem__(i, i * 2 + 1))
    total = f.local("total", I32, init=0)
    f.for_range(0, n, lambda i: total.set(total.get() + arr[i]))
    f.out(total.get())
    # Constant call argument: no main-resident producer feeds helper,
    # so main's own propagation walks never leave main.
    y = f.call("helper", [f.c(7)], I32)
    f.out(y)
    f.done()
    return module.finalize()


def _model(module, profile, *, shared: bool):
    """A model with no disk binding (in-memory store behavior only)."""
    return create_model("trident", module, profile, warm=False,
                        shared=shared)


class TestFunctionGranularity:
    UNTOUCHED_QUERIES = (
        "model.tuples", "model.fc", "model.fs", "model.fm",
        "model.weighting", "model.sdc",
    )

    def test_untouched_function_served_from_cache(self):
        reset_query_stores()
        base = _two_function_module(0)
        mutated = _two_function_module(1)
        assert (function_fingerprint(base.functions["main"])
                == function_fingerprint(mutated.functions["main"]))
        assert (function_fingerprint(base.functions["helper"])
                != function_fingerprint(mutated.functions["helper"]))

        profile, _ = ProfilingInterpreter(base).run()
        first = _model(base, profile, shared=True)
        cold_map = first.sdc_map()

        mutated_profile, _ = ProfilingInterpreter(mutated).run()
        second = _model(mutated, mutated_profile, shared=True)
        warm_map = second.sdc_map()

        engine = second.queries
        for name in self.UNTOUCHED_QUERIES:
            view = engine.view(name, "main")
            assert view.misses == 0, f"{name} recomputed for untouched main"
        # A model.sdc hit short-circuits the whole pipeline for that
        # instruction, so downstream queries legitimately show zero
        # traffic; the top-level query must actually have been served.
        assert engine.view("model.sdc", "main").hits > 0
        # The mutated function really did recompute (fresh input key).
        assert engine.view("model.tuples", "helper").misses > 0
        assert cold_map and warm_map


@pytest.mark.usefixtures("fresh_default_cache")
class TestIncrementalBitIdentity:
    def _assert_incremental_matches_cold(self, module, benchmark_name,
                                         untouched: set[str]):
        profile, _ = ProfilingInterpreter(module).run()
        incremental = _model(module, profile, shared=True)
        incremental_map = incremental.sdc_map()

        cold = _model(module, profile, shared=False)
        cold_map = cold.sdc_map()

        assert incremental_map == cold_map, (
            f"{benchmark_name}: incremental re-model diverged from cold"
        )
        # Intra-function queries of untouched functions never recompute.
        for name in untouched:
            for query in ("model.tuples", "model.fc"):
                view = incremental.queries.view(query, name)
                assert view.misses == 0, (
                    f"{benchmark_name}: {query} recomputed for untouched "
                    f"function {name}"
                )

    def test_after_duplication(self, benchmark_name):
        reset_query_stores()
        module = cached_module(benchmark_name)
        profile = cached_profile(benchmark_name)[0]
        _model(module, profile, shared=True).sdc_map()  # warm the stores

        candidates = [
            iid for iid in duplicable_iids(module) if profile.count(iid) > 0
        ]
        protected, report = duplicate_instructions(module, candidates[:4])
        untouched = set(module.functions) - report.touched_functions
        self._assert_incremental_matches_cold(
            protected, benchmark_name, untouched
        )

    def test_after_optimization(self, benchmark_name):
        reset_query_stores()
        module = cached_module(benchmark_name)
        profile = cached_profile(benchmark_name)[0]
        _model(module, profile, shared=True).sdc_map()  # warm the stores

        optimized, report = optimize(module, level=1)
        untouched = set(module.functions) - report.touched_functions
        self._assert_incremental_matches_cold(
            optimized, benchmark_name, untouched
        )


class TestRemodelSpeedup:
    def test_warm_remodel_twice_as_fast(self):
        # hercules at "small" scale: the hot ``main`` stays untouched;
        # only the tiny ``laplacian`` helper is protected, so the warm
        # re-model reuses nearly all of the expensive work.  The cold
        # build runs first so the one-time per-module memoizations
        # (local index, profile slices) are charged to neither side.
        reset_query_stores()
        module = build_module("hercules", "small")
        profile, _ = ProfilingInterpreter(module).run()
        _model(module, profile, shared=True).sdc_map()

        duplicable = set(duplicable_iids(module))
        helper_iids = [
            inst.iid
            for inst in module.functions["laplacian"].instructions()
            if inst.iid in duplicable
        ]
        assert helper_iids
        protected, report = duplicate_instructions(module, helper_iids[:3])
        assert report.touched_functions == {"laplacian"}
        pprofile, _ = ProfilingInterpreter(protected).run()

        started = time.perf_counter()
        cold_map = _model(protected, pprofile, shared=False).sdc_map()
        cold_seconds = time.perf_counter() - started

        started = time.perf_counter()
        warm_map = _model(protected, pprofile, shared=True).sdc_map()
        warm_seconds = time.perf_counter() - started

        assert warm_map == cold_map
        assert warm_seconds * 2 <= cold_seconds, (
            f"warm {warm_seconds:.3f}s vs cold {cold_seconds:.3f}s"
        )
