"""Differential testing: the fast closure engine and the tree-walking
profiler implement the same semantics.

Hypothesis generates random programs through the eDSL (arithmetic on
locals, array traffic, branches, loops); both interpreters must produce
identical outputs and dynamic instruction counts on every one of them.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.interp import ExecutionEngine
from repro.ir import I32, FunctionBuilder, Module
from repro.profiling import ProfilingInterpreter

_INT_OPS = ("add", "sub", "mul", "and", "or", "xor")

_op_strategy = st.tuples(
    st.sampled_from(_INT_OPS),
    st.integers(min_value=0, max_value=3),    # source local a
    st.integers(min_value=0, max_value=3),    # source local b
    st.integers(min_value=0, max_value=3),    # destination local
)

_program_strategy = st.fixed_dictionaries({
    "init": st.lists(
        st.integers(min_value=-1000, max_value=1000),
        min_size=4, max_size=4,
    ),
    "ops": st.lists(_op_strategy, min_size=1, max_size=12),
    "loop_n": st.integers(min_value=0, max_value=6),
    "branch_threshold": st.integers(min_value=-500, max_value=500),
    "array_data": st.lists(
        st.integers(min_value=0, max_value=255), min_size=4, max_size=8,
    ),
})


def build_random_program(spec) -> Module:
    module = Module("generated")
    f = FunctionBuilder(module, "main")
    locals_ = [
        f.local(f"v{i}", I32, init=value)
        for i, value in enumerate(spec["init"])
    ]
    data = spec["array_data"]
    arr = f.global_array("data", I32, len(data), data)

    def apply_ops():
        for op, a, b, dest in spec["ops"]:
            lhs = locals_[a].get()
            rhs = locals_[b].get()
            locals_[dest].set(lhs._binop(op, None, rhs)
                              if op in ("and", "or", "xor")
                              else lhs._binop(op, None, rhs))

    apply_ops()

    # A data-dependent branch.
    f.if_(
        locals_[0].get() > spec["branch_threshold"],
        lambda: locals_[1].set(locals_[1].get() + 1),
        lambda: locals_[2].set(locals_[2].get() - 1),
    )

    # A loop over the array with in-bounds indexing.
    if spec["loop_n"]:
        def body(i):
            index = i % len(data)
            locals_[3].set(locals_[3].get() + arr[index])
        f.for_range(0, spec["loop_n"], body)

    for variable in locals_:
        f.out(variable.get())
    f.done()
    return module.finalize()


@given(_program_strategy)
@settings(max_examples=60, deadline=None)
def test_engine_and_profiler_agree(spec):
    module = build_random_program(spec)
    engine_result = ExecutionEngine(module).golden()
    profile, profiler_outputs = ProfilingInterpreter(module).run()
    assert engine_result.outputs == profiler_outputs
    assert engine_result.dynamic_count == profile.dynamic_count
    assert engine_result.instruction_counts() == profile.inst_counts


@given(_program_strategy, st.integers(min_value=0, max_value=2**31))
@settings(max_examples=30, deadline=None)
def test_injection_terminates_and_classifies(spec, raw_seed):
    """Any single-bit fault yields exactly one defined outcome."""
    import random

    from repro.fi import OUTCOMES, FaultInjector

    module = build_random_program(spec)
    injector = FaultInjector(module)
    rng = random.Random(raw_seed)
    outcome = injector.run_one(injector.sample_injection(rng))
    assert outcome in OUTCOMES


@given(_program_strategy)
@settings(max_examples=30, deadline=None)
def test_model_probabilities_valid_on_random_programs(spec):
    """TRIDENT stays within [0,1] on arbitrary generated programs."""
    from repro.core import Trident

    module = build_random_program(spec)
    model = Trident.build(module)
    for iid in model.eligible:
        assert 0.0 <= model.instruction_sdc(iid) <= 1.0
    assert 0.0 <= model.overall_sdc(samples=50, seed=0) <= 1.0


@given(_program_strategy)
@settings(max_examples=20, deadline=None)
def test_print_parse_round_trip_random(spec):
    from repro.ir import parse_module, print_module

    module = build_random_program(spec)
    text = print_module(module)
    assert print_module(parse_module(text)) == text
