"""End-to-end integration: the paper's headline claims on our substrate.

These are the acceptance tests of the reproduction — each asserts one
qualitative result of the evaluation (Sec. V/VI/VII).
"""

import pytest

from repro.baselines import EpvfModel, PvfModel
#: The full Table I suite — MAE comparisons are only meaningful across
#: all 11 programs (any subset can flip on a single outlier).
from repro.bench import BENCHMARK_NAMES as NAMES
from repro.core import build_all_models
from repro.fi import FaultInjector
from repro.protection import evaluate_protection
from repro.stats import mean_absolute_error, paired_t_test
from tests.conftest import cached_module, cached_profile


@pytest.fixture(scope="module")
def evaluation():
    """FI + all model predictions for the selected benchmarks."""
    rows = []
    for name in NAMES:
        module = cached_module(name)
        profile, _ = cached_profile(name)
        injector = FaultInjector(module)
        campaign = injector.campaign(250, seed=3)
        models = build_all_models(module, profile)
        predictions = {
            key: model.overall_sdc(samples=250, seed=1)
            for key, model in models.items()
        }
        predictions["pvf"] = PvfModel(module, profile).overall(250, seed=1)
        predictions["epvf"] = EpvfModel(
            module, profile,
            measured_crash_probability=campaign.crash_probability,
        ).overall(250, seed=1)
        rows.append((name, campaign, predictions))
    return rows


class TestFig5Claims:
    def test_trident_closest_to_fi(self, evaluation):
        fi = [c.sdc_probability for _n, c, _p in evaluation]
        errors = {
            key: mean_absolute_error(
                [p[key] for _n, _c, p in evaluation], fi
            )
            for key in ("trident", "fs+fc", "fs")
        }
        assert errors["trident"] < errors["fs+fc"]
        assert errors["trident"] < errors["fs"]

    def test_fs_fc_always_over_predicts(self, evaluation):
        """Sec. V-B1: 'the model fs+fc always over-predicts SDCs
        compared with TRIDENT'."""
        for _name, _campaign, predictions in evaluation:
            assert predictions["fs+fc"] >= predictions["trident"] - 1e-9

    def test_trident_statistically_close(self, evaluation):
        """Analogue of the paper's paired t-test (they report p=0.764).

        Our reproduction retains a mild conservatism on self-healing
        loop structures (the lucky-store effect the paper itself names
        in Sec. VII-A), so we assert the weaker bound p > 0.01 and that
        TRIDENT is far closer to FI than the simpler models are.
        """
        fi = [c.sdc_probability for _n, c, _p in evaluation]
        trident = [p["trident"] for _n, _c, p in evaluation]
        result = paired_t_test(trident, fi)
        assert result.p_value > 0.01
        fs_fc = [p["fs+fc"] for _n, _c, p in evaluation]
        assert paired_t_test(fs_fc, fi).p_value < result.p_value

    def test_mean_levels_sane(self, evaluation):
        fi_mean = sum(
            c.sdc_probability for _n, c, _p in evaluation
        ) / len(evaluation)
        trident_mean = sum(
            p["trident"] for _n, _c, p in evaluation
        ) / len(evaluation)
        assert abs(trident_mean - fi_mean) < 0.15


class TestFig9Claims:
    def test_ordering_pvf_worst(self, evaluation):
        fi = [c.sdc_probability for _n, c, _p in evaluation]
        errors = {
            key: mean_absolute_error(
                [p[key] for _n, _c, p in evaluation], fi
            )
            for key in ("trident", "epvf", "pvf")
        }
        assert errors["pvf"] > errors["epvf"] > errors["trident"]

    def test_pvf_near_one(self, evaluation):
        for _name, _campaign, predictions in evaluation:
            assert predictions["pvf"] > 0.8


class TestFig8Claims:
    def test_trident_guided_protection_beats_fs(self):
        """Fig. 8: at the same overhead bound, TRIDENT-guided selection
        reduces SDC at least as much as the fs-only model's."""
        module = cached_module("pathfinder")
        profile, _ = cached_profile("pathfinder")
        trident = evaluate_protection(
            module, profile, "trident", 1 / 3, fi_samples=300, seed=11
        )
        fs_only = evaluate_protection(
            module, profile, "fs", 1 / 3, fi_samples=300, seed=11
        )
        assert trident.sdc_reduction >= fs_only.sdc_reduction - 0.05

    def test_higher_budget_higher_reduction(self):
        module = cached_module("bfs_rodinia")
        profile, _ = cached_profile("bfs_rodinia")
        low = evaluate_protection(
            module, profile, "trident", 1 / 3, fi_samples=300, seed=13
        )
        high = evaluate_protection(
            module, profile, "trident", 2 / 3, fi_samples=300, seed=13
        )
        assert high.sdc_reduction >= low.sdc_reduction - 0.05
        assert high.measured_overhead > low.measured_overhead


class TestScalabilityClaim:
    def test_model_amortizes_over_samples(self):
        """Fig. 6a's core claim: model cost is ~flat in sample count
        while FI cost is linear by construction."""
        import time

        module = cached_module("hotspot")
        profile, _ = cached_profile("hotspot")
        from repro.core import Trident

        model = Trident(module, profile)
        started = time.perf_counter()
        model.overall_sdc(samples=500, seed=0)
        first = time.perf_counter() - started
        started = time.perf_counter()
        model.overall_sdc(samples=5000, seed=0)
        tenfold = time.perf_counter() - started
        # 10x the samples must cost far less than 10x the time.
        assert tenfold < max(first, 1e-4) * 10
