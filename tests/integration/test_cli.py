"""The command line interface."""

import io

import pytest

from repro.cli import main


def run_cli(*argv) -> str:
    out = io.StringIO()
    status = main(list(argv), out=out)
    assert status == 0
    return out.getvalue()


class TestCli:
    def test_list(self):
        text = run_cli("list")
        assert "pathfinder" in text
        assert "Rodinia" in text
        assert text.count("\n") >= 12

    def test_show_prints_ir(self):
        text = run_cli("show", "nw", "--scale", "test")
        assert "func @main() : void {" in text
        assert "icmp" in text

    def test_analyze(self):
        text = run_cli("analyze", "pathfinder", "--scale", "test",
                       "--samples", "200", "--top", "3")
        assert "overall SDC probability" in text
        assert "overall crash probability" in text
        assert text.count("%") > 5

    def test_analyze_simpler_model(self):
        text = run_cli("analyze", "pathfinder", "--scale", "test",
                       "--samples", "200", "--model", "fs")
        assert "model:   fs" in text
        assert "crash probability" not in text  # trident-only extension

    def test_inject(self):
        text = run_cli("inject", "pathfinder", "--scale", "test",
                       "--runs", "100")
        assert "sdc" in text
        assert "crash" in text
        assert "±" in text

    def test_protect(self):
        text = run_cli("protect", "pathfinder", "--scale", "test",
                       "--runs", "150", "--budget", "0.5")
        assert "SDC reduction" in text
        assert "instructions protected" in text

    def test_experiment_table1(self):
        text = run_cli("experiment", "table1", "--scale", "test",
                       "--fi-samples", "100")
        assert "Table I" in text

    def test_input_seed_changes_program(self):
        a = run_cli("show", "pathfinder", "--scale", "test")
        b = run_cli("show", "pathfinder", "--scale", "test",
                    "--input-seed", "1")
        assert a != b

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            run_cli("analyze", "doom", "--scale", "test")

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            run_cli("frobnicate")
