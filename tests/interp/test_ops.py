"""Value semantics: integer/float ops, comparisons, casts, formatting."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.interp.errors import ArithmeticTrap
from repro.interp.ops import (
    eval_cast,
    eval_fcmp,
    eval_float_binop,
    eval_icmp,
    eval_int_binop,
    format_output,
    reinterpret_loaded,
)
from repro.ir.bitutils import from_signed, to_signed
from repro.ir.types import F32, F64, I32, I8


class TestIntBinop:
    def test_add_wraps(self):
        assert eval_int_binop("add", 0xFFFFFFFF, 1, 32) == 0

    def test_sub_wraps(self):
        assert eval_int_binop("sub", 0, 1, 32) == 0xFFFFFFFF

    def test_mul(self):
        assert eval_int_binop("mul", 7, 6, 32) == 42

    def test_sdiv_truncates_toward_zero(self):
        # C semantics: -7 / 2 == -3 (Python's // would give -4).
        assert to_signed(eval_int_binop(
            "sdiv", from_signed(-7, 32), 2, 32), 32) == -3

    def test_sdiv_by_zero_traps(self):
        with pytest.raises(ArithmeticTrap):
            eval_int_binop("sdiv", 1, 0, 32)

    def test_sdiv_overflow_traps(self):
        with pytest.raises(ArithmeticTrap):
            eval_int_binop("sdiv", from_signed(-(2**31), 32),
                           from_signed(-1, 32), 32)

    def test_srem_sign_follows_dividend(self):
        assert to_signed(eval_int_binop(
            "srem", from_signed(-7, 32), 2, 32), 32) == -1

    def test_udiv_urem(self):
        assert eval_int_binop("udiv", 0xFFFFFFFF, 2, 32) == 0x7FFFFFFF
        assert eval_int_binop("urem", 10, 3, 32) == 1
        with pytest.raises(ArithmeticTrap):
            eval_int_binop("urem", 10, 0, 32)

    def test_logic(self):
        assert eval_int_binop("and", 0b1100, 0b1010, 8) == 0b1000
        assert eval_int_binop("or", 0b1100, 0b1010, 8) == 0b1110
        assert eval_int_binop("xor", 0b1100, 0b1010, 8) == 0b0110

    def test_shifts(self):
        assert eval_int_binop("shl", 1, 4, 32) == 16
        assert eval_int_binop("shl", 0x80000000, 1, 32) == 0
        assert eval_int_binop("lshr", 0x80000000, 31, 32) == 1
        # ashr replicates the sign bit.
        assert eval_int_binop("ashr", 0x80000000, 31, 32) == 0xFFFFFFFF

    def test_shift_amount_modulo_width(self):
        assert eval_int_binop("shl", 1, 33, 32) == 2

    def test_unknown_op(self):
        with pytest.raises(ValueError):
            eval_int_binop("nope", 1, 2, 32)


class TestFloatBinop:
    def test_basic(self):
        assert eval_float_binop("fadd", 1.5, 2.5, 64) == 4.0
        assert eval_float_binop("fmul", 3.0, 0.5, 64) == 1.5

    def test_fdiv_by_zero_gives_inf(self):
        assert math.isinf(eval_float_binop("fdiv", 1.0, 0.0, 64))
        assert math.isnan(eval_float_binop("fdiv", 0.0, 0.0, 64))

    def test_f32_rounds(self):
        result = eval_float_binop("fadd", 0.1, 0.2, 32)
        assert result == pytest.approx(0.3, abs=1e-6)
        assert result != 0.1 + 0.2  # f64 sum differs from f32 sum

    def test_frem(self):
        assert eval_float_binop("frem", 7.5, 2.0, 64) == 1.5
        assert math.isnan(eval_float_binop("frem", 1.0, 0.0, 64))


class TestComparisons:
    def test_signed_vs_unsigned(self):
        minus_one = from_signed(-1, 32)
        assert eval_icmp("slt", minus_one, 1, 32) == 1
        assert eval_icmp("ult", minus_one, 1, 32) == 0  # 0xFFFFFFFF > 1

    @pytest.mark.parametrize("pred,expected", [
        ("eq", 0), ("ne", 1), ("slt", 1), ("sle", 1), ("sgt", 0), ("sge", 0),
    ])
    def test_predicates(self, pred, expected):
        assert eval_icmp(pred, 3, 5, 32) == expected

    def test_fcmp_nan_is_unordered(self):
        assert eval_fcmp("oeq", math.nan, math.nan) == 0
        assert eval_fcmp("olt", math.nan, 1.0) == 0
        assert eval_fcmp("one", math.nan, 1.0) == 0

    def test_fcmp_basic(self):
        assert eval_fcmp("olt", 1.0, 2.0) == 1
        assert eval_fcmp("oge", 2.0, 2.0) == 1


class TestCasts:
    def test_trunc(self):
        assert eval_cast("trunc", 0x1FF, I32, I8) == 0xFF

    def test_zext_sext(self):
        assert eval_cast("zext", 0xFF, I8, I32) == 0xFF
        assert eval_cast("sext", 0xFF, I8, I32) == 0xFFFFFFFF

    def test_sitofp(self):
        assert eval_cast("sitofp", from_signed(-3, 32), I32, F64) == -3.0

    def test_fptosi_truncates(self):
        assert to_signed(eval_cast("fptosi", 3.9, F64, I32), 32) == 3
        assert to_signed(eval_cast("fptosi", -3.9, F64, I32), 32) == -3

    def test_fptosi_saturates(self):
        assert to_signed(eval_cast("fptosi", 1e30, F64, I32), 32) == 2**31 - 1
        assert to_signed(eval_cast("fptosi", -1e30, F64, I32), 32) == -(2**31)
        assert eval_cast("fptosi", math.nan, F64, I32) == 0

    def test_fptrunc(self):
        assert eval_cast("fptrunc", 1e300, F64, F32) == math.inf


class TestFormatting:
    def test_int_signed(self):
        assert format_output(from_signed(-5, 32), I32, None) == "-5"

    def test_float_precision(self):
        assert format_output(123.456, F64, 2) == "1.2e+02"
        assert format_output(1.5, F64, 6) == "1.5"


class TestReinterpret:
    def test_float_cell_as_int(self):
        value = reinterpret_loaded(1.0, I32)
        assert isinstance(value, int)
        assert 0 <= value <= 0xFFFFFFFF

    def test_int_cell_as_float(self):
        value = reinterpret_loaded(0x3FF0000000000000, F64)
        assert value == 1.0

    def test_wide_int_as_narrow(self):
        assert reinterpret_loaded(0x1FF, I8) == 0xFF


# -- property tests against Python's own big-int arithmetic ------------------

u32 = st.integers(min_value=0, max_value=2**32 - 1)


@given(u32, u32)
def test_add_matches_python_mod(a, b):
    assert eval_int_binop("add", a, b, 32) == (a + b) % 2**32


@given(u32, u32)
def test_mul_matches_python_mod(a, b):
    assert eval_int_binop("mul", a, b, 32) == (a * b) % 2**32


@given(u32, st.integers(min_value=1, max_value=2**32 - 1))
def test_udiv_matches_python(a, b):
    assert eval_int_binop("udiv", a, b, 32) == a // b


@given(u32, u32)
def test_icmp_eq_consistent(a, b):
    assert eval_icmp("eq", a, b, 32) == int(a == b)
    assert eval_icmp("ne", a, b, 32) == int(a != b)


@given(st.integers(min_value=-(2**31), max_value=2**31 - 1),
       st.integers(min_value=-(2**31), max_value=2**31 - 1))
def test_slt_matches_signed_compare(a, b):
    assert eval_icmp(
        "slt", from_signed(a, 32), from_signed(b, 32), 32
    ) == int(a < b)
