"""Batch-tier lane semantics: divergence, drain, and accounting.

The lockstep executor's contract is that per-lane results are exactly
what the scalar tiers would produce for the same injections — lanes
that diverge from group control flow are peeled onto the scalar drain
path, never dropped or approximated.  These tests build small modules
where the divergence mechanics are fully predictable (one branch flip,
one division trap, one store disagreement) and check each lane against
a scalar reference run, plus the ``GroupOutcome``/``CampaignResult``
throughput and divergence accounting around them.
"""

from __future__ import annotations

import pytest

from repro.fi.campaign import FaultInjector
from repro.interp.batch import HAVE_NUMPY, BatchRunner
from repro.interp.codegen import TIER_BATCH, TIER_CODEGEN
from repro.interp.engine import ExecutionEngine, Injection
from repro.interp.result import CRASH, OK
from repro.ir import I32, I64, Module
from repro.ir.dsl import FunctionBuilder

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="batch tier requires numpy"
)


def _finish(f: FunctionBuilder, module: Module) -> Module:
    f.done()
    module.finalize()
    return module


def branch_module():
    """A data-dependent branch: flipping a high bit of ``probe`` in one
    lane sends it down the other arm while the group continues."""
    module = Module("batch_branch")
    f = FunctionBuilder(module, "main")
    x = f.local("x", I32, 4)
    probe = x.get() + 1
    f.if_(
        probe > f.c(100),
        lambda: f.out(f.c(1)),
        lambda: f.out(f.c(0)),
    )
    acc = f.local("acc", I32, 0)
    f.for_range(0, 5, lambda i: acc.set(acc.get() + i))
    f.out(acc.get())
    return _finish(f, module), probe.value


def trap_module():
    """A division whose denominator loads 1; bit 0 of the load flips it
    to 0 and traps — in exactly one lane."""
    module = Module("batch_trap")
    f = FunctionBuilder(module, "main")
    num = f.local("num", I32, 64)
    den = f.local("den", I32, 1)
    probe = den.get()
    f.out(num.get() / f.wrap(probe.value))
    f.out(f.c(7))
    return _finish(f, module), probe.value


def store_module():
    """Straight-line code whose stored value is the injection target:
    lanes disagree on memory contents but never on control flow."""
    module = Module("batch_store")
    f = FunctionBuilder(module, "main")
    a = f.array("a", I64, 4)
    v = f.local("v", I64, 5)
    probe = v.get()
    a[2] = f.wrap(probe.value)
    total = f.local("total", I64, 0)
    f.for_range(0, 4, lambda i: total.set(total.get() + a[i].to_int(I64)))
    f.out(total.get())
    return _finish(f, module), probe.value


def nested_branch_module():
    """A diamond inside a diamond: the outer flip diverges one lane, and
    inside that side a second data-dependent branch splits again —
    exercising two levels of the reconvergence mask stack."""
    module = Module("batch_nested")
    f = FunctionBuilder(module, "main")
    x = f.local("x", I32, 4)
    probe = x.get() + 1
    acc = f.local("acc", I32, 0)

    def outer_then():
        f.if_(
            x.get() > f.c(2),
            lambda: acc.set(acc.get() + 10),
            lambda: acc.set(acc.get() + 20),
        )
        f.out(acc.get())

    f.if_(probe > f.c(100), outer_then, lambda: acc.set(acc.get() + 1))
    f.out(acc.get())
    return _finish(f, module), probe.value


def side_loop_module():
    """The divergent arm contains a loop (``while_`` over predeclared
    locals, so the region stays alloca-free and mergeable): a lane
    parked into the side executes far more instructions than the
    majority — the shape that exposes per-lane dynamic-count deltas
    and hang scans."""
    module = Module("batch_side_loop")
    f = FunctionBuilder(module, "main")
    x = f.local("x", I32, 4)
    probe = x.get() + 1
    acc = f.local("acc", I32, 0)
    j = f.local("j", I32, 0)

    def spin():
        f.while_(
            lambda: j.get() < f.c(40),
            lambda: (acc.set(acc.get() + j.get()), j.set(j.get() + 1)),
        )

    f.if_(probe > f.c(100), spin, lambda: acc.set(acc.get() + 1))
    f.out(acc.get())
    return _finish(f, module), probe.value


def alloca_region_module():
    """An alloca inside the divergent region forces the drain fallback
    (the batch memory image cannot give lanes distinct stack cursors)."""
    module = Module("batch_alloca_region")
    f = FunctionBuilder(module, "main")
    x = f.local("x", I32, 4)
    probe = x.get() + 1

    def arm_with_alloca():
        tmp = f.array("tmp", I32, 2)
        tmp[0] = x.get()
        f.out(tmp[0].to_int(I32))

    f.if_(probe > f.c(100), arm_with_alloca, lambda: f.out(f.c(0)))
    f.out(x.get())
    return _finish(f, module), probe.value


def _scalar_reference(module, injection):
    return ExecutionEngine(module, tier=TIER_CODEGEN).run(injection=injection)


def _assert_lane_matches(lane_result, reference):
    assert lane_result.outcome == reference.outcome
    assert lane_result.crash_reason == reference.crash_reason
    assert lane_result.outputs == reference.outputs
    assert lane_result.dynamic_count == reference.dynamic_count
    assert lane_result.block_counts == reference.block_counts


def test_branch_divergence_reconverges_without_drain():
    """The default path: a lone lane takes the other arm of an if/else,
    parks at the join block, and re-merges — no scalar drain at all."""
    module, probe = branch_module()
    engine = ExecutionEngine(module, tier=TIER_BATCH)
    injection = Injection(probe.iid, 1, 30)  # 5 -> 2**30 + 5: other arm
    trials = [None, injection, None, None]
    group = engine.batch_runner().run_group(trials)
    assert len(group.results) == 4
    assert group.reconverged >= 1
    assert group.drains == 0
    assert group.drain_executed == 0
    assert group.divergences == 0
    golden = engine.golden()
    reference = _scalar_reference(module, injection)
    assert reference.outputs != golden.outputs  # the flip really branched
    for lane, result in enumerate(group.results):
        expected = reference if trials[lane] is injection else golden
        _assert_lane_matches(result, expected)


def test_branch_divergence_peels_one_lane(monkeypatch):
    """With reconvergence disabled the old contract holds: the minority
    lane is peeled onto the scalar drain."""
    monkeypatch.setenv("REPRO_BATCH_RECONVERGE", "0")
    module, probe = branch_module()
    engine = ExecutionEngine(module, tier=TIER_BATCH)
    injection = Injection(probe.iid, 1, 30)
    trials = [None, injection, None, None]
    group = engine.batch_runner().run_group(trials)
    assert len(group.results) == 4
    assert group.divergences == 1
    assert group.drains == 1
    assert group.reconverged == 0
    golden = engine.golden()
    reference = _scalar_reference(module, injection)
    for lane, result in enumerate(group.results):
        expected = reference if trials[lane] is injection else golden
        _assert_lane_matches(result, expected)


def test_nested_divergence_reconverges_both_levels():
    module, probe = nested_branch_module()
    engine = ExecutionEngine(module, tier=TIER_BATCH)
    injection = Injection(probe.iid, 1, 30)
    trials = [None, injection, None, None, None]
    group = engine.batch_runner().run_group(trials)
    assert group.reconverged >= 1
    assert group.drains == 0
    golden = engine.golden()
    reference = _scalar_reference(module, injection)
    assert reference.outputs != golden.outputs
    for lane, result in enumerate(group.results):
        expected = reference if trials[lane] is injection else golden
        _assert_lane_matches(result, expected)


def test_side_loop_keeps_per_lane_dynamic_counts():
    """A lane that runs a loop inside its side must report its own
    (much larger) dynamic count while the majority keeps the shared one."""
    module, probe = side_loop_module()
    engine = ExecutionEngine(module, tier=TIER_BATCH)
    injection = Injection(probe.iid, 1, 30)
    trials = [None, injection, None]
    group = engine.batch_runner().run_group(trials)
    assert group.reconverged >= 1
    assert group.drains == 0
    golden = engine.golden()
    reference = _scalar_reference(module, injection)
    assert reference.dynamic_count > golden.dynamic_count
    for lane, result in enumerate(group.results):
        expected = reference if trials[lane] is injection else golden
        _assert_lane_matches(result, expected)


def test_hang_inside_side_matches_scalar_budget():
    """The injected lane loops inside its side past a tight budget: it
    must hang with exactly the scalar tier's count and message while the
    other lanes finish OK."""
    module, probe = side_loop_module()
    engine = ExecutionEngine(module, tier=TIER_BATCH)
    injection = Injection(probe.iid, 1, 30)
    budget = engine.golden().dynamic_count + 20
    reference = ExecutionEngine(module, tier=TIER_CODEGEN).run(
        injection=injection, budget=budget
    )
    assert reference.outcome == "hang"
    group = engine.batch_runner().run_group(
        [None, injection, None], budget=budget
    )
    _assert_lane_matches(group.results[1], reference)
    for lane in (0, 2):
        assert group.results[lane].outcome == OK


def test_alloca_in_region_falls_back_to_drain():
    module, probe = alloca_region_module()
    engine = ExecutionEngine(module, tier=TIER_BATCH)
    injection = Injection(probe.iid, 1, 30)
    trials = [None, injection, None, None]
    group = engine.batch_runner().run_group(trials)
    assert group.reconverged == 0
    assert group.drains == 1
    assert group.divergences == 1
    golden = engine.golden()
    reference = _scalar_reference(module, injection)
    for lane, result in enumerate(group.results):
        expected = reference if trials[lane] is injection else golden
        _assert_lane_matches(result, expected)


def test_trap_in_one_lane_crashes_only_that_lane():
    module, probe = trap_module()
    engine = ExecutionEngine(module, tier=TIER_BATCH)
    injection = Injection(probe.iid, 1, 0)  # denominator 1 -> 0
    group = engine.batch_runner().run_group([None, None, injection])
    reference = _scalar_reference(module, injection)
    assert reference.outcome == CRASH
    _assert_lane_matches(group.results[2], reference)
    golden = engine.golden()
    for lane in (0, 1):
        assert group.results[lane].outcome == OK
        _assert_lane_matches(group.results[lane], golden)


def test_per_lane_memory_divergence_without_branching():
    """Divergent stores split memory cells per lane; control flow stays
    shared, so no lane is peeled yet every lane sees its own value."""
    module, probe = store_module()
    engine = ExecutionEngine(module, tier=TIER_BATCH)
    trials = [None, Injection(probe.iid, 1, 8), Injection(probe.iid, 1, 9)]
    group = engine.batch_runner().run_group(trials)
    assert group.divergences == 0
    outputs = [result.outputs for result in group.results]
    assert len({tuple(o) for o in outputs}) == 3  # all three lanes differ
    for lane, injection in enumerate(trials):
        expected = (
            engine.golden() if injection is None
            else _scalar_reference(module, injection)
        )
        _assert_lane_matches(group.results[lane], expected)


def test_group_outcome_accounting():
    """Lockstep executes the shared trace once: executed stays near one
    trace-length while skipped absorbs the other lanes' logical work."""
    module, _probe = store_module()
    engine = ExecutionEngine(module, tier=TIER_BATCH)
    lanes = 6
    group = engine.batch_runner().run_group([None] * lanes)
    trace = engine.golden().dynamic_count
    logical = sum(result.dynamic_count for result in group.results)
    assert logical == lanes * trace
    assert group.executed + group.skipped == logical
    assert group.executed < 2 * trace  # not lanes * trace


def test_single_lane_group_matches_scalar():
    module, probe = trap_module()
    engine = ExecutionEngine(module, tier=TIER_BATCH)
    injection = Injection(probe.iid, 1, 0)
    group = engine.batch_runner().run_group([injection])
    _assert_lane_matches(group.results[0], _scalar_reference(module, injection))


def test_run_group_rejects_bad_trials():
    module, probe = branch_module()
    runner = ExecutionEngine(module, tier=TIER_BATCH).batch_runner()
    with pytest.raises(ValueError):
        runner.run_group([])
    with pytest.raises(ValueError):
        runner.run_group([Injection(probe.iid, 1, 99)])  # bit out of range
    store_iids = [
        inst.iid for inst in module.instructions() if not inst.has_result
    ]
    with pytest.raises(ValueError):
        runner.run_group([Injection(store_iids[0], 1, 0)])


def test_campaign_counts_match_scalar_tiers_and_count_divergences():
    module, _probe = branch_module()
    reference = FaultInjector(
        module, interp_tier=TIER_CODEGEN, checkpoint=False
    ).campaign(80, seed=3)
    for lanes in (1, 8, 64):
        batch = FaultInjector(
            module, interp_tier=TIER_BATCH, checkpoint=False,
            batch_lanes=lanes,
        ).campaign(80, seed=3)
        assert batch.counts == reference.counts
        assert batch.batch_lanes == lanes
        assert batch.batch_fallbacks == 0
    # Multi-lane groups over a branchy module must have reconverged a
    # divergent branch somewhere, and this module's if/else regions are
    # all mergeable — nothing should fall back to the scalar drain.
    assert batch.batch_reconverged > 0
    assert batch.batch_drains == 0
    assert batch.drain_fraction == 0.0


def test_campaign_peel_mode_counts_divergences(monkeypatch):
    """REPRO_BATCH_RECONVERGE=0 restores drain-only divergence handling
    with identical outcome counts."""
    monkeypatch.setenv("REPRO_BATCH_RECONVERGE", "0")
    module, _probe = branch_module()
    reference = FaultInjector(
        module, interp_tier=TIER_CODEGEN, checkpoint=False
    ).campaign(80, seed=3)
    batch = FaultInjector(
        module, interp_tier=TIER_BATCH, checkpoint=False, batch_lanes=8,
    ).campaign(80, seed=3)
    assert batch.counts == reference.counts
    assert batch.batch_divergences > 0
    assert batch.batch_drains > 0
    assert batch.batch_reconverged == 0
    assert batch.drain_fraction > 0.0


def test_numpy_absence_degrades_to_codegen(monkeypatch):
    """Without numpy the batch tier must run trials on the scalar path
    (batch_lanes stays 0, no groups formed) with identical counts."""
    module, _probe = branch_module()
    reference = FaultInjector(
        module, interp_tier=TIER_CODEGEN, checkpoint=False
    ).campaign(40, seed=9)
    monkeypatch.setattr("repro.interp.batch.HAVE_NUMPY", False)
    degraded = FaultInjector(
        module, interp_tier=TIER_BATCH, checkpoint=False, batch_lanes=8
    ).campaign(40, seed=9)
    assert degraded.counts == reference.counts
    assert degraded.batch_lanes == 0
    assert degraded.batch_divergences == 0
    with pytest.raises(Exception):
        BatchRunner(ExecutionEngine(module, tier=TIER_BATCH))
