"""ops.py edge cases the codegen tier must preserve, across both tiers.

The generated source inlines the hot arithmetic (masked add/sub/mul,
bitwise ops, unsigned compares) and falls back to :mod:`repro.interp.ops`
for the rest, so every exactness property of the closure tier — wraparound
at each bit width, signed/unsigned comparison boundaries, NaN-propagating
float compares, division/remainder traps — is asserted identical across
tiers here, with concrete anchors so a semantics change in *both* tiers
cannot slip through as "still identical".
"""

from __future__ import annotations

import pytest

from repro.interp.batch import HAVE_NUMPY
from repro.interp.codegen import TIER_BATCH, TIER_CLOSURE, TIER_CODEGEN
from repro.interp.engine import ExecutionEngine, Injection
from repro.interp.result import CRASH, OK
from repro.ir import F32, F64, I8, I16, I32, I64, Function, IRBuilder, Module

WIDTHS = {8: I8, 16: I16, 32: I32, 64: I64}


def _assert_same(left, right):
    assert left.outcome == right.outcome
    assert left.crash_reason == right.crash_reason
    assert left.outputs == right.outputs
    assert left.block_counts == right.block_counts
    assert left.dynamic_count == right.dynamic_count


def run_both(build):
    """Build a one-function module, run it on every tier, assert they
    agree on everything observable, and return the closure result."""
    module = Module("ops_edge")
    fn = module.add_function(Function("main"))
    b = IRBuilder(fn, fn.add_block("entry"))
    build(b)
    b.ret()
    module.finalize()
    closure = ExecutionEngine(module, tier=TIER_CLOSURE).run()
    codegen_engine = ExecutionEngine(module, tier=TIER_CODEGEN)
    assert codegen_engine.codegen_fallbacks == 0
    codegen = codegen_engine.run()
    _assert_same(closure, codegen)
    if HAVE_NUMPY:
        _run_batch(module, closure, codegen_engine)
    return closure


def _run_batch(module, closure, codegen_engine):
    """The same case through the batch tier's numpy paths.

    A fault-free uniform group takes the scalar fast paths, so the
    middle lane injects a bit-0 flip into the first register-producing
    instruction: its value diverges, every downstream operation runs on
    real numpy arrays, and the numpy result must still match the scalar
    tiers bit-for-bit — in the injected lane (vs a scalar run of the
    same injection) and in the clean lanes (vs the golden run), i.e.
    numpy dtype semantics must not leak into visible results.
    """
    batch_engine = ExecutionEngine(module, tier=TIER_BATCH)
    target = next(
        (inst for inst in module.instructions() if inst.has_result), None
    )
    trials = [None, None, None]
    if target is not None:
        trials[1] = Injection(target.iid, 1, 0)
    group = batch_engine.batch_runner().run_group(trials)
    for trial, lane_result in zip(trials, group.results):
        expected = (
            closure if trial is None
            else codegen_engine.run(injection=trial)
        )
        _assert_same(lane_result, expected)


def out_bool(b, cond):
    """Project an i1 into a printable 0/1 without width surprises."""
    b.output(b.select(cond, b.const(1, I32), b.const(0, I32)))


class TestIntegerWraparound:
    @pytest.mark.parametrize("bits", sorted(WIDTHS))
    def test_add_sub_mul_wrap(self, bits):
        ty = WIDTHS[bits]
        int_max = (1 << (bits - 1)) - 1
        int_min = -(1 << (bits - 1))

        def build(b):
            b.output(b.add(b.const(int_max, ty), b.const(1, ty)))
            b.output(b.sub(b.const(int_min, ty), b.const(1, ty)))
            b.output(b.mul(b.const(int_max, ty), b.const(2, ty)))
            b.output(b.shl(b.const(1, ty), b.const(bits - 1, ty)))

        result = run_both(build)
        assert result.outcome == OK
        assert result.outputs == [
            str(int_min),       # INT_MAX + 1 wraps to INT_MIN
            str(int_max),       # INT_MIN - 1 wraps to INT_MAX
            str(-2),            # INT_MAX * 2 == 2^bits - 2 == -2 signed
            str(int_min),       # 1 << (bits-1) is the sign bit
        ]

    @pytest.mark.parametrize("bits", sorted(WIDTHS))
    def test_shift_amounts_reduced_mod_bits(self, bits):
        ty = WIDTHS[bits]

        def build(b):
            b.output(b.shl(b.const(3, ty), b.const(bits, ty)))
            b.output(b.lshr(b.const(-1, ty), b.const(1, ty)))
            b.output(b.ashr(b.const(-8, ty), b.const(2, ty)))

        result = run_both(build)
        assert result.outcome == OK
        assert result.outputs[0] == "3"               # shift by width: no-op
        assert result.outputs[1] == str((1 << (bits - 1)) - 1)
        assert result.outputs[2] == "-2"              # arithmetic shift


class TestComparisonBoundaries:
    @pytest.mark.parametrize("bits", sorted(WIDTHS))
    def test_signed_vs_unsigned_of_minus_one(self, bits):
        ty = WIDTHS[bits]

        def build(b):
            minus_one, zero = b.const(-1, ty), b.const(0, ty)
            out_bool(b, b.icmp("slt", minus_one, zero))  # -1 < 0 signed
            out_bool(b, b.icmp("ult", minus_one, zero))  # UMAX < 0 unsigned
            out_bool(b, b.icmp("ugt", minus_one, zero))
            out_bool(b, b.icmp("sge", b.const(-(1 << (bits - 1)), ty), zero))

        result = run_both(build)
        assert result.outputs == ["1", "0", "1", "0"]

    def test_boundary_equalities(self):
        def build(b):
            int_min = b.const(-(1 << 31), I32)
            out_bool(b, b.icmp("eq", int_min, b.const(1 << 31, I32)))
            out_bool(b, b.icmp("sle", int_min, int_min))
            out_bool(b, b.icmp("ule", b.const(-1, I32), b.const(-1, I32)))

        result = run_both(build)
        # -2^31 and +2^31 occupy the same i32 bit pattern.
        assert result.outputs == ["1", "1", "1"]


class TestFloatCompares:
    def test_nan_makes_ordered_compares_false(self):
        def build(b):
            nan, one = b.const(float("nan"), F64), b.const(1.0, F64)
            for predicate in ("oeq", "olt", "ogt", "ole", "oge"):
                out_bool(b, b.fcmp(predicate, nan, one))
            out_bool(b, b.fcmp("oeq", nan, nan))
            out_bool(b, b.fcmp("one", one, b.const(2.0, F64)))

        result = run_both(build)
        assert result.outputs == ["0", "0", "0", "0", "0", "0", "1"]

    def test_nan_propagates_through_arithmetic(self):
        def build(b):
            nan = b.fdiv(b.const(0.0, F64), b.const(0.0, F64))
            b.output(b.fadd(nan, b.const(1.0, F64)))
            out_bool(b, b.fcmp("oeq", nan, nan))

        result = run_both(build)
        assert result.outcome == OK
        assert result.outputs == ["nan", "0"]

    def test_f32_arithmetic_truncates(self):
        def build(b):
            big = b.const(3.0e38, F32)
            b.output(b.fadd(big, big))        # overflows binary32 -> inf
            b.output(b.fmul(b.const(1.5, F32), b.const(2.0, F32)))

        result = run_both(build)
        assert result.outputs[0] == "inf"
        assert result.outputs[1] == "3"


class TestDivisionTraps:
    @pytest.mark.parametrize("op", ["sdiv", "udiv", "srem", "urem"])
    def test_integer_division_by_zero_traps(self, op):
        def build(b):
            b.output(b.binop(op, b.const(7, I32), b.const(0, I32)))

        result = run_both(build)
        assert result.outcome == CRASH
        assert result.crash_reason

    @pytest.mark.parametrize("bits", sorted(WIDTHS))
    def test_int_min_over_minus_one(self, bits):
        """sdiv overflows (trap); srem of the same operands is 0."""
        ty = WIDTHS[bits]
        int_min = -(1 << (bits - 1))

        def build_div(b):
            b.output(b.sdiv(b.const(int_min, ty), b.const(-1, ty)))

        result = run_both(build_div)
        assert result.outcome == CRASH
        assert "overflow" in result.crash_reason

        def build_rem(b):
            b.output(b.srem(b.const(int_min, ty), b.const(-1, ty)))

        result = run_both(build_rem)
        assert result.outcome == OK
        assert result.outputs == ["0"]

    def test_truncating_division_semantics(self):
        def build(b):
            b.output(b.sdiv(b.const(-7, I32), b.const(2, I32)))
            b.output(b.srem(b.const(-7, I32), b.const(2, I32)))
            b.output(b.udiv(b.const(-7, I32), b.const(2, I32)))

        result = run_both(build)
        # C-style truncation toward zero, remainder keeps dividend sign.
        assert result.outputs[:2] == ["-3", "-1"]
        assert result.outputs[2] == str(((1 << 32) - 7) // 2)

    def test_float_division_specials_do_not_trap(self):
        def build(b):
            b.output(b.fdiv(b.const(1.0, F64), b.const(0.0, F64)))
            b.output(b.fdiv(b.const(-1.0, F64), b.const(0.0, F64)))
            b.output(b.binop("frem", b.const(5.5, F64), b.const(2.0, F64)))
            b.output(b.binop("frem", b.const(1.0, F64), b.const(0.0, F64)))

        result = run_both(build)
        assert result.outcome == OK
        assert result.outputs == ["inf", "-inf", "1.5", "nan"]
