"""The execution engine: golden runs, fault injection, outcome taxonomy."""

import pytest

from repro.interp import CRASH, DETECTED, HANG, OK, ExecutionEngine, Injection
from repro.ir import I32, FunctionBuilder, Module
from repro.ir.instructions import BinOp, GetElementPtr, Load
from tests.conftest import cached_module


class TestGoldenRun:
    def test_accumulator_output(self, accumulator_engine):
        golden = accumulator_engine.golden()
        assert golden.outcome == OK
        # odd numbers 1..31 greater than 5: 7+9+...+31
        assert golden.outputs[0] == str(sum(range(7, 32, 2)))
        assert golden.outputs[1] == "2.5"

    def test_instruction_counts_match_dynamic_total(self, accumulator_engine):
        golden = accumulator_engine.golden()
        counts = golden.instruction_counts()
        assert sum(counts.values()) == golden.dynamic_count

    def test_runs_are_deterministic(self, accumulator_engine):
        a = accumulator_engine.run()
        b = accumulator_engine.run()
        assert a.outputs == b.outputs
        assert a.dynamic_count == b.dynamic_count

    def test_engine_requires_main(self):
        module = Module("nomain")
        f = FunctionBuilder(module, "helper")
        f.done()
        module.finalize()
        with pytest.raises(ValueError, match="main"):
            ExecutionEngine(module)

    def test_engine_requires_finalized(self):
        module = Module("raw")
        with pytest.raises(ValueError, match="finalize"):
            ExecutionEngine(module)

    def test_benchmark_golden_matches_profiler(self, benchmark_name):
        from tests.conftest import cached_profile

        module = cached_module(benchmark_name)
        _profile, outputs = cached_profile(benchmark_name)
        golden = ExecutionEngine(module).golden()
        assert golden.outputs == outputs


class TestInjection:
    def test_injection_flips_exactly_once(self, accumulator_module):
        engine = ExecutionEngine(accumulator_module)
        golden = engine.golden()
        counts = golden.instruction_counts()
        target = next(
            inst for inst in accumulator_module.instructions()
            if isinstance(inst, BinOp) and counts.get(inst.iid, 0) > 0
        )
        result = engine.run(Injection(target.iid, 1, 0))
        assert result.activated

    def test_unexecuted_occurrence_never_activates(self, accumulator_module):
        engine = ExecutionEngine(accumulator_module)
        golden = engine.golden()
        counts = golden.instruction_counts()
        target = next(
            inst for inst in accumulator_module.instructions()
            if inst.has_result and counts.get(inst.iid, 0) > 0
        )
        result = engine.run(
            Injection(target.iid, counts[target.iid] + 100, 0)
        )
        assert not result.activated
        assert result.outputs == golden.outputs

    def test_injection_reproducible(self, accumulator_module):
        engine = ExecutionEngine(accumulator_module)
        counts = engine.golden().instruction_counts()
        target = next(
            inst for inst in accumulator_module.instructions()
            if isinstance(inst, BinOp) and counts.get(inst.iid, 0) > 0
        )
        injection = Injection(target.iid, 1, 7)
        a = engine.run(injection)
        b = engine.run(injection)
        assert a.outcome == b.outcome
        assert a.outputs == b.outputs

    def test_injection_into_resultless_instruction_rejected(
            self, accumulator_module):
        engine = ExecutionEngine(accumulator_module)
        store = next(
            inst for inst in accumulator_module.instructions()
            if inst.opcode == "store"
        )
        with pytest.raises(ValueError):
            engine.run(Injection(store.iid, 1, 0))

    def test_bit_out_of_range_rejected(self, accumulator_module):
        engine = ExecutionEngine(accumulator_module)
        target = next(
            inst for inst in accumulator_module.instructions()
            if inst.has_result and inst.type == I32
        )
        with pytest.raises(ValueError):
            engine.run(Injection(target.iid, 1, 32))

    def test_pointer_high_bit_flip_crashes(self, accumulator_module):
        engine = ExecutionEngine(accumulator_module)
        counts = engine.golden().instruction_counts()
        gep = next(
            inst for inst in accumulator_module.instructions()
            if isinstance(inst, GetElementPtr) and counts.get(inst.iid, 0) > 0
        )
        result = engine.run(Injection(gep.iid, 1, 60))
        assert result.outcome == CRASH


class TestOutcomes:
    def test_hang_detected(self):
        module = Module("hang")
        f = FunctionBuilder(module, "main")
        n = f.local("n", I32, init=0)
        # Loop bound loaded from memory: a fault can make it huge, but
        # here we force the hang via a tiny engine budget instead.
        f.for_range(0, 1000, lambda i: n.set(n.get() + 1))
        f.out(n.get())
        f.done()
        module.finalize()
        engine = ExecutionEngine(module)
        result = engine.run(budget=100)
        assert result.outcome == HANG

    def test_detect_fires_on_mismatch(self):
        module = Module("detect")
        fn_builder = FunctionBuilder(module, "main")
        builder = fn_builder.b
        a = builder.add(builder.const(1, I32), builder.const(2, I32))
        b = builder.add(builder.const(1, I32), builder.const(3, I32))
        builder.detect(a, b)
        builder.ret(None)
        module.finalize()
        result = ExecutionEngine(module).run()
        assert result.outcome == DETECTED

    def test_detect_passes_on_match(self):
        module = Module("detect_ok")
        fn_builder = FunctionBuilder(module, "main")
        builder = fn_builder.b
        a = builder.add(builder.const(1, I32), builder.const(2, I32))
        b = builder.add(builder.const(1, I32), builder.const(2, I32))
        builder.detect(a, b)
        builder.output(builder.const(1, I32))
        builder.ret(None)
        module.finalize()
        result = ExecutionEngine(module).run()
        assert result.outcome == OK
        assert result.outputs == ["1"]

    def test_division_by_corrupted_zero_crashes(self):
        module = Module("div")
        f = FunctionBuilder(module, "main")
        d = f.local("d", I32, init=1)
        f.out(f.c(100) / d.get())
        f.done()
        module.finalize()
        engine = ExecutionEngine(module)
        load = next(
            inst for inst in module.instructions()
            if isinstance(inst, Load)
        )
        # Flip bit 0 of the loaded divisor 1 -> 0: division trap.
        result = engine.run(Injection(load.iid, 1, 0))
        assert result.outcome == CRASH

    def test_stack_overflow_is_crash(self):
        module = Module("recurse")
        f = FunctionBuilder(module, "rec", [I32], ["n"], I32)
        f.ret(f.call("rec", [f.arg(0) + 1], I32))
        f.done()
        main = FunctionBuilder(module, "main")
        main.out(main.call("rec", [main.c(0)], I32))
        main.done()
        module.finalize()
        result = ExecutionEngine(module, stack_limit=20).run()
        assert result.outcome == CRASH


class TestPerformance:
    def test_throughput_floor(self, benchmark_name):
        """The compiled engine must stay fast enough for FI campaigns."""
        import time

        module = cached_module(benchmark_name)
        engine = ExecutionEngine(module)
        golden = engine.golden()
        started = time.perf_counter()
        for _ in range(3):
            engine.run()
        elapsed = (time.perf_counter() - started) / 3
        rate = golden.dynamic_count / max(elapsed, 1e-9)
        assert rate > 100_000, f"engine too slow: {rate:.0f} inst/s"
