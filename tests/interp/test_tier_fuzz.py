"""Cross-tier property fuzzing: every execution tier is one semantics.

:mod:`repro.ir.fuzz` grows random-but-valid IR modules (mixed integer
widths, phi nodes after mem2reg, loops, division/remainder ops that can
trap under injection, NaN-prone float arithmetic, loads and stores) and
this suite locks all tiers together over them: for each module the
golden run *and* a full fault-injection campaign must be bit-identical
across the closure tier, the closure tier with stride-1 checkpointing,
the codegen tier, and the batch tier with and without checkpointing.

A failing seed is shrunk to a minimal statement subset with
:func:`repro.ir.fuzz.shrink_case` and persisted under
``fuzz_regressions/`` as JSON, where ``test_fuzz_regressions`` replays
it on every subsequent run; the original failure message names both the
wide and the minimal case so either can be reproduced by hand.

Knobs: ``REPRO_FUZZ_MODULES`` (seeds per run, default 200) and
``REPRO_FUZZ_SEED`` (base seed, default 0 — CI can sweep fresh seeds
without code changes).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.fi.campaign import FaultInjector
from repro.interp.batch import HAVE_NUMPY
from repro.interp.result import OK
from repro.ir.fuzz import FuzzCase, build_fuzz_module, shrink_case
from repro.ir.instructions import BinOp, Phi
from repro.ir.printer import print_module

REGRESSION_DIR = Path(__file__).parent / "fuzz_regressions"

N_MODULES = int(os.environ.get("REPRO_FUZZ_MODULES", "200"))
BASE_SEED = int(os.environ.get("REPRO_FUZZ_SEED", "0"))
CHUNK = 25

CAMPAIGN_RUNS = 24
CAMPAIGN_SEED = 11
#: Odd and smaller than the campaign, so groups are partial and lanes
#: straddle group boundaries — the shapes most likely to hide bugs.
BATCH_LANES = 7

#: (tier, checkpoint, checkpoint_stride) configurations under test.
#: Stride 1 snapshots at every opportunity, maximizing resume coverage.
TIERS = [
    ("closure", False, 0),
    ("closure", True, 1),
    ("codegen", True, 0),
]
if HAVE_NUMPY:
    TIERS += [("batch", False, 0), ("batch", True, 0)]


def tier_fingerprint(module, tier, checkpoint, stride):
    """Everything observable about one tier's run of ``module``: golden
    outcome/outputs/trace shape plus full campaign outcome counts."""
    injector = FaultInjector(
        module, interp_tier=tier, checkpoint=checkpoint,
        checkpoint_stride=stride, batch_lanes=BATCH_LANES,
    )
    golden = injector.engine.golden()
    counts = injector.campaign(CAMPAIGN_RUNS, seed=CAMPAIGN_SEED).counts
    return (
        golden.outcome,
        tuple(golden.outputs),
        golden.dynamic_count,
        tuple(sorted((b.name, c) for b, c in golden.block_counts.items())),
        counts,
    )


def disagreement(case: FuzzCase):
    """The first (tier-config, reference, got) mismatch, or None.

    An exception anywhere (module build, golden run, campaign) also
    counts as a disagreement — the tiers cannot be compared — so the
    shrinker minimizes crashes with the same machinery as mismatches.
    """
    try:
        module = build_fuzz_module(case)
        reference = tier_fingerprint(module, *TIERS[0])
        for config in TIERS[1:]:
            got = tier_fingerprint(module, *config)
            if got != reference:
                return (config, reference, got)
    except Exception as exc:  # noqa: BLE001 - any crash is a finding
        return (("exception", type(exc).__name__, str(exc)), None, None)
    return None


def _persist_regression(case: FuzzCase) -> Path:
    REGRESSION_DIR.mkdir(exist_ok=True)
    path = REGRESSION_DIR / f"seed_{case.seed}.json"
    path.write_text(json.dumps(case.to_dict(), indent=2) + "\n")
    return path


def _seed_chunks():
    seeds = range(BASE_SEED, BASE_SEED + N_MODULES)
    return [seeds[i:i + CHUNK] for i in range(0, len(seeds), CHUNK)]


@pytest.mark.parametrize(
    "seeds", _seed_chunks(), ids=lambda r: f"seeds{r.start}to{r.stop - 1}"
)
def test_fuzz_tiers_agree(seeds):
    """The property: all tiers produce identical fingerprints for every
    generated module.  Failures shrink and persist before reporting."""
    for seed in seeds:
        case = FuzzCase(seed)
        found = disagreement(case)
        if found is None:
            continue
        minimal = shrink_case(case, lambda c: disagreement(c) is not None)
        path = _persist_regression(minimal)
        config, reference, got = disagreement(minimal) or found
        pytest.fail(
            f"tier disagreement at seed {seed}; minimal case "
            f"{minimal.to_dict()} persisted to {path}\n"
            f"config: {config}\nreference: {reference}\ngot: {got}"
        )


def test_fuzz_regressions():
    """Replay every previously-shrunk failing case (empty dir = no-op)."""
    paths = sorted(REGRESSION_DIR.glob("*.json")) \
        if REGRESSION_DIR.is_dir() else []
    failures = []
    for path in paths:
        case = FuzzCase.from_dict(json.loads(path.read_text()))
        found = disagreement(case)
        if found is not None:
            failures.append((path.name, found[0]))
    assert not failures, f"regression cases disagree again: {failures}"


def test_generator_determinism():
    """Same case, same module — byte-identical IR both fresh and with a
    statement subset, so persisted regressions replay exactly."""
    for case in (FuzzCase(5), FuzzCase(5, enabled=(0, 2, 3))):
        first = print_module(build_fuzz_module(case))
        second = print_module(build_fuzz_module(case))
        assert first == second


def test_generator_coverage():
    """The first 40 seeds must between them exercise the features the
    suite exists to cross-check: phi nodes (mem2reg actually ran),
    loops, integer division, float arithmetic — and every golden run
    must be fault-free (traps are reachable only under injection)."""
    saw_phi = saw_div = saw_float = saw_loop = 0
    for seed in range(40):
        module = build_fuzz_module(FuzzCase(seed))
        ops = [i for i in module.instructions() if isinstance(i, BinOp)]
        saw_phi += any(isinstance(i, Phi) for i in module.instructions())
        saw_div += any(
            i.op in ("sdiv", "udiv", "srem", "urem") for i in ops
        )
        saw_float += any(i.op.startswith("f") for i in ops)
        saw_loop += any(
            len(f.blocks) > 2 for f in module.functions.values()
        )
        golden = FaultInjector(module, checkpoint=False).engine.golden()
        assert golden.outcome == OK, f"seed {seed} golden run faulted"
    assert saw_phi >= 10
    assert saw_div >= 10
    assert saw_float >= 20
    assert saw_loop >= 20


def test_shrinker_minimizes():
    """Shrinking against a synthetic predicate ("contains a division")
    lands on a small enabled set that still satisfies it, and every
    intermediate candidate the shrinker tried was buildable."""
    def has_div(case: FuzzCase) -> bool:
        module = build_fuzz_module(case)  # raises if a subset is invalid
        return any(
            isinstance(i, BinOp)
            and i.op in ("sdiv", "udiv", "srem", "urem")
            for i in module.instructions()
        )

    for seed in range(30):
        case = FuzzCase(seed)
        if not has_div(case):
            continue
        minimal = shrink_case(case, has_div)
        assert has_div(minimal)
        assert minimal.enabled is not None
        assert len(minimal.enabled) <= 2
        break
    else:  # pragma: no cover - generator emits divisions frequently
        pytest.fail("no seed in range(30) produced a division")
