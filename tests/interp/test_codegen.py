"""Codegen tier differential: bit-identical to the closure tier.

The codegen tier compiles each basic block (and straight-line
superblocks) to one generated Python function with two specializations
— a fault-free fast path and an injection-capable variant selected only
for blocks covering the armed iid.  Everything here enforces the
contract that makes that optimization safe to default on: RunResult
outcomes, outputs, block counts, dynamic counts, and campaign counts
are bit-identical to the closure tier on every benchmark, with or
without checkpointing, and a codegen failure degrades per-function
without changing a single result.
"""

from __future__ import annotations

import random

import pytest

from repro.fi import FaultInjector
from repro.interp import engine as engine_mod
from repro.interp import engine_build_count
from repro.interp.codegen import (
    TIER_CLOSURE,
    TIER_CODEGEN,
    TIER_ENV,
    resolve_tier,
)
from repro.interp.engine import ExecutionEngine, Injection
from repro.opt.pipeline import optimize
from tests.conftest import cached_module


def assert_same_run(left, right, context=""):
    assert left.outcome == right.outcome, context
    assert left.crash_reason == right.crash_reason, context
    assert left.outputs == right.outputs, context
    assert left.block_counts == right.block_counts, context
    assert left.dynamic_count == right.dynamic_count, context
    assert left.activated == right.activated, context


def sampled_injections(module, n, seed=7):
    """Eligible injections drawn with the campaign's own sampler."""
    injector = FaultInjector(module, checkpoint=False)
    rng = random.Random(seed)
    return [injector.sample_injection(rng) for _ in range(n)]


class TestGoldenIdentity:
    def test_golden_bit_identical(self, benchmark_module):
        closure = ExecutionEngine(benchmark_module, tier=TIER_CLOSURE)
        codegen = ExecutionEngine(benchmark_module, tier=TIER_CODEGEN)
        assert codegen.codegen_functions == len(benchmark_module.functions)
        assert codegen.codegen_fallbacks == 0
        assert_same_run(closure.run(), codegen.run(), benchmark_module.name)

    def test_optimized_module_bit_identical(self):
        module, _report = optimize(cached_module("pathfinder"), 2)
        closure = ExecutionEngine(module, tier=TIER_CLOSURE)
        codegen = ExecutionEngine(module, tier=TIER_CODEGEN)
        assert codegen.codegen_fallbacks == 0
        assert_same_run(closure.run(), codegen.run(), "optimized pathfinder")


class TestInjectionDifferential:
    @pytest.mark.parametrize("name", ["pathfinder", "hotspot", "sad"])
    def test_sampled_injections_bit_identical(self, name):
        module = cached_module(name)
        closure = ExecutionEngine(module, tier=TIER_CLOSURE)
        codegen = ExecutionEngine(module, tier=TIER_CODEGEN)
        for injection in sampled_injections(module, 60):
            assert_same_run(
                closure.run(injection), codegen.run(injection),
                f"{name}: {injection}",
            )

    def test_phi_heavy_injections_bit_identical(self):
        """Injections into a phi-rich O2 module exercise the generated
        edge-copy guards (phi moves are injection sites too)."""
        module, _report = optimize(cached_module("hotspot"), 2)
        assert any(
            True for fn in module.functions.values()
            for block in fn.blocks for _phi in block.phis()
        )
        closure = ExecutionEngine(module, tier=TIER_CLOSURE)
        codegen = ExecutionEngine(module, tier=TIER_CODEGEN)
        for injection in sampled_injections(module, 60, seed=11):
            assert_same_run(
                closure.run(injection), codegen.run(injection),
                f"O2 hotspot: {injection}",
            )


class TestResumeDifferential:
    def test_checkpoint_resume_matches_closure_cold_run(self):
        module = cached_module("pathfinder")
        closure = ExecutionEngine(module, tier=TIER_CLOSURE)
        codegen = ExecutionEngine(module, tier=TIER_CODEGEN)
        capture = codegen.capture(stride=200)
        for injection in sampled_injections(module, 40, seed=3):
            snapshot = capture.snapshot_for(injection)
            if snapshot is None:
                continue
            resumed = capture.resume(snapshot, injection)
            assert_same_run(
                closure.run(injection), resumed, f"resume {injection}"
            )

    def test_capture_lockstep_with_run_on_phi_heavy_module(self):
        """Satellite: the capture loop (always closure) and both run
        tiers must agree instruction-for-instruction — this is the
        regression net for the once-duplicated phi-move logic."""
        module, _report = optimize(cached_module("pathfinder"), 2)
        for tier in (TIER_CLOSURE, TIER_CODEGEN):
            engine = ExecutionEngine(module, tier=tier)
            captured = engine.capture(stride=100).result
            assert_same_run(engine.run(), captured, f"capture vs {tier}")


class TestFallback:
    def test_codegen_failure_degrades_per_function(self, monkeypatch):
        module = cached_module("pathfinder")
        reference = ExecutionEngine(module, tier=TIER_CLOSURE).run()

        def explode(engine, compiled):
            raise RuntimeError("synthetic codegen failure")

        monkeypatch.setattr(engine_mod, "generate_function", explode)
        degraded = ExecutionEngine(module, tier=TIER_CODEGEN)
        assert degraded.codegen_functions == 0
        assert degraded.codegen_fallbacks == len(module.functions)
        assert_same_run(reference, degraded.run(), "degraded engine")
        for injection in sampled_injections(module, 15, seed=5):
            cold = ExecutionEngine(module, tier=TIER_CLOSURE).run(injection)
            assert_same_run(cold, degraded.run(injection), str(injection))


class TestTierSelection:
    def test_resolve_tier_precedence(self, monkeypatch):
        monkeypatch.delenv(TIER_ENV, raising=False)
        assert resolve_tier() == TIER_CODEGEN
        monkeypatch.setenv(TIER_ENV, TIER_CLOSURE)
        assert resolve_tier() == TIER_CLOSURE
        assert resolve_tier(TIER_CODEGEN) == TIER_CODEGEN  # arg beats env

    def test_unknown_tier_rejected(self, monkeypatch):
        with pytest.raises(ValueError):
            resolve_tier("jit")
        with pytest.raises(ValueError):
            ExecutionEngine(cached_module("nw"), tier="jit")
        monkeypatch.setenv(TIER_ENV, "bogus")
        with pytest.raises(ValueError):
            resolve_tier()

    def test_configure_tier_switches_without_rebuild(self):
        module = cached_module("nw")
        engine = ExecutionEngine(module, tier=TIER_CLOSURE)
        reference = engine.run()
        before = engine_build_count()
        engine.configure_tier(TIER_CODEGEN)
        assert engine.tier == TIER_CODEGEN
        assert engine.codegen_functions == len(module.functions)
        assert_same_run(reference, engine.run(), "after switch to codegen")
        engine.configure_tier(TIER_CLOSURE)
        assert_same_run(reference, engine.run(), "after switch back")
        assert engine_build_count() == before


class TestCampaignParity:
    @pytest.mark.parametrize("checkpoint", [True, False])
    def test_campaign_counts_identical_across_tiers(self, checkpoint):
        module = cached_module("hotspot")
        closure = FaultInjector(
            module, checkpoint=checkpoint, interp_tier=TIER_CLOSURE
        )
        codegen = FaultInjector(
            module, checkpoint=checkpoint, interp_tier=TIER_CODEGEN
        )
        left = closure.campaign(120, seed=9)
        right = codegen.campaign(120, seed=9)
        assert left.counts == right.counts
        assert left.interp_tier == TIER_CLOSURE
        assert right.interp_tier == TIER_CODEGEN
        assert right.codegen_functions == len(module.functions)
        assert right.codegen_fallbacks == 0

    def test_per_instruction_campaign_identical(self):
        module = cached_module("pathfinder")
        closure = FaultInjector(module, interp_tier=TIER_CLOSURE)
        codegen = FaultInjector(module, interp_tier=TIER_CODEGEN)
        iids = closure.eligible_iids()[:10]
        left = closure.per_instruction_campaign(iids, 10, seed=4)
        right = codegen.per_instruction_campaign(iids, 10, seed=4)
        assert {i: r.counts for i, r in left.items()} == \
            {i: r.counts for i, r in right.items()}
