"""Segmented memory model: layout, validity, crashes."""

import pytest

from repro.interp.errors import MemoryFault
from repro.interp.memory import GLOBAL_BASE, GlobalLayout, MemoryState
from repro.ir import F64, I32, Module


def layout_with_globals() -> GlobalLayout:
    module = Module("m")
    module.new_global("a", I32, 4, [1, 2, 3, 4])
    module.new_global("b", F64, 2, [0.5, 1.5])
    return GlobalLayout(module)


class TestGlobalLayout:
    def test_addresses_in_data_segment(self):
        layout = layout_with_globals()
        assert layout.addresses["a"] >= GLOBAL_BASE
        assert layout.addresses["b"] > layout.addresses["a"]

    def test_globals_padded_apart(self):
        layout = layout_with_globals()
        end_of_a = layout.addresses["a"] + 4 * 4
        assert layout.addresses["b"] >= end_of_a + 64

    def test_init_cells(self):
        layout = layout_with_globals()
        memory = MemoryState(layout)
        base = layout.addresses["a"]
        assert memory.load(base, 0) == 1
        assert memory.load(base + 12, 0) == 4
        assert memory.load(layout.addresses["b"] + 8, 0.0) == 1.5


class TestMemoryState:
    def test_oob_load_faults(self):
        memory = MemoryState(layout_with_globals())
        with pytest.raises(MemoryFault):
            memory.load(0x1234, 0)

    def test_oob_store_faults(self):
        memory = MemoryState(layout_with_globals())
        with pytest.raises(MemoryFault):
            memory.store(0x1234, 1)

    def test_misaligned_global_access_faults(self):
        layout = layout_with_globals()
        memory = MemoryState(layout)
        with pytest.raises(MemoryFault):
            memory.load(layout.addresses["a"] + 1, 0)

    def test_stack_allocation_and_free(self):
        memory = MemoryState(layout_with_globals())
        base, elements = memory.allocate_stack(4, 4)
        memory.store(base, 42)
        assert memory.load(base, 0) == 42
        memory.free(elements)
        with pytest.raises(MemoryFault):
            memory.load(base, 0)

    def test_uninitialized_stack_reads_default(self):
        memory = MemoryState(layout_with_globals())
        base, _elements = memory.allocate_stack(2, 8)
        assert memory.load(base, 0.0) == 0.0

    def test_footprint_grows(self):
        memory = MemoryState(layout_with_globals())
        before = memory.footprint_bytes
        memory.allocate_stack(100, 4)
        assert memory.footprint_bytes == before + 400

    def test_distinct_allocations_dont_overlap(self):
        memory = MemoryState(layout_with_globals())
        base1, e1 = memory.allocate_stack(4, 4)
        base2, e2 = memory.allocate_stack(4, 4)
        assert set(e1).isdisjoint(e2)
        memory.store(base1, 7)
        memory.store(base2, 9)
        assert memory.load(base1, 0) == 7

    def test_is_valid(self):
        layout = layout_with_globals()
        memory = MemoryState(layout)
        assert memory.is_valid(layout.addresses["a"])
        assert not memory.is_valid(0)
