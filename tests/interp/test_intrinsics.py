"""Math intrinsics: C-style domain-error semantics."""

import math

import pytest

from repro.interp.intrinsics import INTRINSICS, call_intrinsic, is_intrinsic
from repro.ir.types import F32, F64


class TestDomainBehaviour:
    def test_sqrt(self):
        assert call_intrinsic("sqrt", [9.0], F64) == 3.0
        assert math.isnan(call_intrinsic("sqrt", [-1.0], F64))

    def test_log(self):
        assert call_intrinsic("log", [1.0], F64) == 0.0
        assert call_intrinsic("log", [0.0], F64) == -math.inf
        assert math.isnan(call_intrinsic("log", [-1.0], F64))

    def test_exp_overflow_to_inf(self):
        assert call_intrinsic("exp", [1e6], F64) == math.inf

    def test_pow(self):
        assert call_intrinsic("pow", [2.0, 10.0], F64) == 1024.0

    def test_trig(self):
        assert call_intrinsic("cos", [0.0], F64) == 1.0
        assert call_intrinsic("sin", [0.0], F64) == 0.0

    def test_fabs(self):
        assert call_intrinsic("fabs", [-2.5], F64) == 2.5

    def test_floor_ceil(self):
        assert call_intrinsic("floor", [2.7], F64) == 2.0
        assert call_intrinsic("ceil", [2.1], F64) == 3.0
        assert call_intrinsic("floor", [math.inf], F64) == math.inf

    def test_f32_result_rounding(self):
        result = call_intrinsic("sqrt", [2.0], F32)
        assert result == pytest.approx(math.sqrt(2.0), rel=1e-6)
        assert result != math.sqrt(2.0)  # rounded to single precision

    def test_is_intrinsic(self):
        assert is_intrinsic("sqrt")
        assert not is_intrinsic("malloc")
        for name in INTRINSICS:
            assert is_intrinsic(name)
