"""Golden-prefix snapshots: capture, restore, and suffix equivalence.

The contract under test is the checkpoint-and-fork soundness invariant:
for any snapshot S and any injection at-or-after S, resuming from S
produces a RunResult bit-identical to a cold full run — outputs,
outcome, dynamic count, activation flag, and block counts.
"""

from __future__ import annotations

import random

import pytest

from repro.interp import ExecutionEngine, Injection
from repro.ir import I32, FunctionBuilder, Module
from tests.conftest import build_accumulator_module, cached_module


def assert_same_run(left, right) -> None:
    assert left.outcome == right.outcome
    assert left.outputs == right.outputs
    assert left.dynamic_count == right.dynamic_count
    assert left.activated == right.activated
    assert left.block_counts == right.block_counts


def build_calling_module(rounds: int = 6, inner: int = 8) -> Module:
    """main loops over a looping callee, so snapshots captured inside
    the callee carry a suspended mid-block caller frame."""
    module = Module("calls")
    g = FunctionBuilder(module, "scale", arg_types=[I32], arg_names=["n"],
                        return_type=I32)
    n = g.arg(0)
    acc = g.local("acc", I32, init=0)
    g.for_range(0, inner, lambda i: acc.set(acc.get() + n + i))
    g.ret(acc.get())
    g.done()

    f = FunctionBuilder(module, "main")
    total = f.local("total", I32, init=0)

    def body(i):
        scaled = f.call("scale", [i], I32)
        total.set(total.get() + scaled)

    f.for_range(0, rounds, body)
    f.out(total.get())
    f.done()
    return module.finalize()


class TestCapture:
    def test_capture_matches_golden(self):
        engine = ExecutionEngine(build_accumulator_module())
        golden = engine.golden()
        capture = engine.capture(stride=10)
        assert_same_run(capture.result, golden)
        assert capture.snapshots, "no snapshots captured"
        assert capture.total_bytes > 0

    def test_snapshots_are_strictly_ordered(self):
        engine = ExecutionEngine(cached_module("pathfinder"))
        capture = engine.capture(stride=50)
        points = [s.dynamic_count for s in capture.snapshots]
        assert points == sorted(points)
        assert len(set(points)) == len(points)

    def test_max_snapshots_caps_schedule(self):
        engine = ExecutionEngine(cached_module("pathfinder"))
        capture = engine.capture(stride=1, max_snapshots=5)
        assert len(capture.snapshots) == 5

    def test_capture_suspends_caller_frames(self):
        engine = ExecutionEngine(build_calling_module())
        capture = engine.capture(stride=3)
        deep = [s for s in capture.snapshots if len(s.frames) > 1]
        assert deep, "no snapshot landed inside the callee"
        for snapshot in deep:
            # Every outer frame records the call step it is parked at;
            # only the innermost resumes at the top of its block loop.
            assert all(f.step_index >= 0 for f in snapshot.frames[:-1])
            assert snapshot.frames[-1].step_index == -1


class TestFaultFreeResume:
    @pytest.mark.parametrize("build", [
        build_accumulator_module,
        build_calling_module,
        lambda: cached_module("pathfinder"),
        lambda: cached_module("hercules"),  # real call-heavy benchmark
    ])
    def test_every_snapshot_replays_golden(self, build):
        engine = ExecutionEngine(build())
        golden = engine.golden()
        stride = max(1, golden.dynamic_count // 24)
        capture = engine.capture(stride)
        assert capture.snapshots
        for snapshot in capture.snapshots:
            assert_same_run(capture.resume(snapshot), golden)

    def test_resume_does_not_mutate_snapshot(self):
        engine = ExecutionEngine(build_accumulator_module())
        capture = engine.capture(stride=10)
        snapshot = capture.snapshots[len(capture.snapshots) // 2]
        cells = dict(snapshot.cells)
        valid = set(snapshot.valid)
        blocks = list(snapshot.block_counts)
        capture.resume(snapshot)
        capture.resume(snapshot)
        assert snapshot.cells == cells
        assert snapshot.valid == valid
        assert snapshot.block_counts == blocks


class TestInjectedResume:
    def differential(self, module, trials: int, seed: int) -> int:
        """Cold vs resumed on random faults; returns resumed-trial count."""
        engine = ExecutionEngine(module)
        golden = engine.golden()
        capture = engine.capture(max(1, golden.dynamic_count // 32))
        counts = golden.instruction_counts()
        targets = [
            inst for inst in module.instructions()
            if inst.has_result and counts.get(inst.iid, 0) > 0
        ]
        rng = random.Random(seed)
        resumed = 0
        for _ in range(trials):
            inst = rng.choice(targets)
            injection = Injection(
                inst.iid,
                rng.randint(1, counts[inst.iid]),
                rng.randrange(inst.type.bits),
            )
            cold = engine.run(injection)
            snapshot = capture.snapshot_for(injection)
            if snapshot is None:
                continue
            resumed += 1
            assert_same_run(capture.resume(snapshot, injection), cold)
        return resumed

    def test_accumulator_differential(self):
        assert self.differential(build_accumulator_module(), 60, 11) > 0

    def test_calls_differential(self):
        assert self.differential(build_calling_module(), 60, 12) > 0

    def test_pathfinder_differential(self):
        assert self.differential(cached_module("pathfinder"), 40, 13) > 0

    def test_hostile_pointer_corruption(self):
        """A flipped address bit crashes the suffix without poisoning
        the snapshot for later trials (the COW discipline)."""
        module = cached_module("pathfinder")
        engine = ExecutionEngine(module)
        golden = engine.golden()
        capture = engine.capture(max(1, golden.dynamic_count // 32))
        counts = golden.instruction_counts()
        geps = [
            inst for inst in module.instructions()
            if inst.opcode == "gep" and counts.get(inst.iid, 0) > 0
        ]
        assert geps
        crashed = 0
        for inst in geps:
            injection = Injection(inst.iid, counts[inst.iid], 40)
            cold = engine.run(injection)
            snapshot = capture.snapshot_for(injection)
            if snapshot is None:
                continue
            assert_same_run(capture.resume(snapshot, injection), cold)
            crashed += cold.outcome == "crash"
            # The same snapshot must still replay the golden suffix.
            assert_same_run(capture.resume(snapshot), engine.run())
        assert crashed, "no pointer corruption produced a crash"


class TestOccurrenceAccounting:
    def test_prefix_occurrence_monotone(self):
        module = build_calling_module()
        engine = ExecutionEngine(module)
        golden = engine.golden()
        capture = engine.capture(stride=3)
        counts = golden.instruction_counts()
        for inst in module.instructions():
            if not inst.has_result or counts.get(inst.iid, 0) == 0:
                continue
            values = [
                capture.prefix_occurrence(s, inst.iid)
                for s in capture.snapshots
            ]
            assert values == sorted(values), inst.iid
            assert all(0 <= v <= counts[inst.iid] for v in values)

    def test_snapshot_for_respects_occurrence(self):
        engine = ExecutionEngine(cached_module("pathfinder"))
        golden = engine.golden()
        capture = engine.capture(max(1, golden.dynamic_count // 32))
        counts = golden.instruction_counts()
        rng = random.Random(99)
        module = engine.module
        checked = 0
        for inst in module.instructions():
            if not inst.has_result or counts.get(inst.iid, 0) == 0:
                continue
            occurrence = rng.randint(1, counts[inst.iid])
            injection = Injection(inst.iid, occurrence, 0)
            snapshot = capture.snapshot_for(injection)
            if snapshot is None:
                continue
            # The chosen snapshot precedes the armed occurrence...
            assert capture.prefix_occurrence(snapshot, inst.iid) < occurrence
            # ...and is the rightmost such snapshot.
            index = capture.snapshots.index(snapshot)
            if index + 1 < len(capture.snapshots):
                later = capture.snapshots[index + 1]
                assert (capture.prefix_occurrence(later, inst.iid)
                        >= occurrence)
            checked += 1
        assert checked > 0
