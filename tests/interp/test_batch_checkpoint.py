"""Batch groups restored from golden-prefix checkpoints.

A lockstep group restores *once* from the snapshot nearest the earliest
lane's fork point and replays the shared suffix for every lane; the
contract is that each lane's result is bit-identical to (a) a cold
scalar run with the same injection and (b) the closure tier's
checkpointed resume.  Stride 1 snapshots at every opportunity — the
capture schedule then lands on mid-block suspended frames, inside loop
bodies, which is the hardest restore shape; a stride beyond the trace
length degenerates to cold starts and must change nothing.
"""

from __future__ import annotations

import pytest

from repro.fi.campaign import FaultInjector
from repro.interp.batch import HAVE_NUMPY
from repro.interp.codegen import TIER_BATCH, TIER_CLOSURE, TIER_CODEGEN
from repro.interp.engine import ExecutionEngine, Injection
from repro.ir import I32, Module
from repro.ir.dsl import FunctionBuilder

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="batch tier requires numpy"
)


def loop_module():
    """Nested loops around a branchy accumulator, so snapshots suspend
    frames mid-block and injections can fork deep into the trace."""
    module = Module("batch_ckpt")
    f = FunctionBuilder(module, "main")
    acc = f.local("acc", I32, 0)
    probe = None

    def inner(i):
        def body(j):
            nonlocal probe
            term = (i * 7 + j).value
            if probe is None:
                probe = term
            f.if_(
                f.wrap(term) > f.c(20),
                lambda: acc.set(acc.get() + f.wrap(term)),
                lambda: acc.set(acc.get() - 1),
            )
        f.for_range(0, 6, body, name="j")

    f.for_range(0, 8, inner, name="i")
    f.out(acc.get())
    f.done()
    module.finalize()
    return module, probe


def test_group_resume_from_midblock_snapshots():
    """Restore a group from a stride-1 snapshot (suspended mid-loop
    frames) and check every lane against a cold scalar run."""
    module, probe = loop_module()
    engine = ExecutionEngine(module, tier=TIER_BATCH)
    capture = engine.capture(stride=1)
    assert len(capture.snapshots) > 4
    # Lanes fork at different occurrences of the same multiply; the
    # group must restore at the snapshot usable for the earliest one.
    trials = [
        Injection(probe.iid, occurrence, bit)
        for occurrence, bit in ((12, 3), (13, 30), (20, 0), (40, 14))
    ]
    snapshot = capture.snapshot_for(trials[0])
    assert snapshot is not None and snapshot.frames
    occurrences = [
        capture.prefix_occurrence(snapshot, injection.iid)
        for injection in trials
    ]
    group = engine.batch_runner().run_group(
        trials, snapshot=snapshot,
        base_outputs=capture.result.outputs[: snapshot.outputs_len],
        occurrences=occurrences,
    )
    for injection, result in zip(trials, group.results):
        cold = ExecutionEngine(module, tier=TIER_CODEGEN).run(
            injection=injection
        )
        assert result.outcome == cold.outcome
        assert result.outputs == cold.outputs
        assert result.dynamic_count == cold.dynamic_count
        assert result.block_counts == cold.block_counts


@pytest.mark.parametrize("stride", [1, 7, 500, 10**9])
def test_campaign_counts_invariant_to_stride(stride):
    """Batch + checkpointing at any stride (including degenerate ones)
    reproduces the closure tier's resumed campaign bit-for-bit."""
    module, _probe = loop_module()
    reference = FaultInjector(
        module, interp_tier=TIER_CLOSURE, checkpoint=True,
        checkpoint_stride=stride,
    ).campaign(60, seed=17)
    for lanes in (1, 8):
        batch = FaultInjector(
            module, interp_tier=TIER_BATCH, checkpoint=True,
            checkpoint_stride=stride, batch_lanes=lanes,
        ).campaign(60, seed=17)
        assert batch.counts == reference.counts
        assert batch.batch_fallbacks == 0


def test_checkpointed_equals_cold_batch_campaign():
    module, _probe = loop_module()
    cold = FaultInjector(
        module, interp_tier=TIER_BATCH, checkpoint=False, batch_lanes=8
    ).campaign(60, seed=23)
    warm = FaultInjector(
        module, interp_tier=TIER_BATCH, checkpoint=True,
        checkpoint_stride=1, batch_lanes=8,
    ).campaign(60, seed=23)
    assert warm.counts == cold.counts
    # Stride-1 restores skip golden-prefix work the cold runs execute.
    assert warm.skipped_instructions > cold.skipped_instructions
