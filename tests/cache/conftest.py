"""Fixtures for the artifact-cache suite: a fresh cache per test."""

from __future__ import annotations

import pytest

from repro.cache import ArtifactCache, configure_cache


@pytest.fixture
def cache(tmp_path) -> ArtifactCache:
    """A standalone cache rooted in this test's temp dir."""
    return ArtifactCache(tmp_path / "cache")


@pytest.fixture
def fresh_default_cache(tmp_path):
    """Swap the process-wide cache for an empty per-test one.

    Restores the session-wide hermetic cache afterwards (the autouse
    fixture in the top-level conftest set $REPRO_CACHE_DIR, which
    ``configure_cache(None)`` resolves).
    """
    cache = configure_cache(tmp_path / "default-cache")
    yield cache
    configure_cache(None)
