"""Typed artifacts: profiles, golden summaries, model results, campaigns."""

from __future__ import annotations

import pytest

from repro.cache import (
    GoldenSummary,
    bind_model_results,
    campaign_key,
    golden_key,
    load_cached_profile,
    load_golden_summary,
    load_model_results,
    model_results_key,
    module_fingerprint,
    profile_digest,
    profile_key,
    store_cached_profile,
    store_golden_summary,
    store_model_results,
)
from repro.core.simple_models import build_model
from repro.fi.campaign import OUTCOMES, SDC, CampaignResult, FaultInjector
from repro.interp.engine import ExecutionEngine
from repro.profiling.serialize import profile_to_dict
from tests.conftest import cached_module, cached_profile


@pytest.fixture(scope="module")
def pathfinder():
    module = cached_module("pathfinder")
    profile, outputs = cached_profile("pathfinder")
    return module, profile, outputs


class TestProfileArtifacts:
    def test_roundtrip_preserves_content(self, cache, pathfinder):
        module, profile, outputs = pathfinder
        key = profile_key(module_fingerprint(module))
        assert store_cached_profile(cache, key, profile, outputs)
        restored = load_cached_profile(cache, key)
        assert restored is not None
        assert profile_to_dict(restored) == profile_to_dict(profile)
        assert profile_digest(restored) == profile_digest(profile)

    def test_key_depends_on_profiler_knobs(self):
        fp = "f" * 64
        assert profile_key(fp) == profile_key(fp, sample_cap=32, seed=2018)
        assert profile_key(fp) != profile_key(fp, sample_cap=64)
        assert profile_key(fp) != profile_key(fp, seed=1)

    def test_malformed_payload_is_a_miss(self, cache):
        key = profile_key("f" * 64)
        cache.store("profile", key, {"not-a-profile": True})
        assert load_cached_profile(cache, key) is None


class TestGoldenSummary:
    def test_substitutes_for_a_real_golden_run(self, cache, pathfinder):
        module, _profile, _outputs = pathfinder
        golden = ExecutionEngine(module).golden()
        summary = GoldenSummary.from_run(golden)
        key = golden_key(module_fingerprint(module))
        assert store_golden_summary(cache, key, summary)
        restored = load_golden_summary(cache, key)

        assert restored.outputs == golden.outputs
        assert restored.dynamic_count == golden.dynamic_count
        assert restored.instruction_counts() == golden.instruction_counts()

        # An injector built on the summary classifies like one built on
        # the real run (same outputs/counts drive the classification).
        injector = FaultInjector(module, golden=restored)
        result = injector.campaign(20, seed=7)
        reference = FaultInjector(module).campaign(20, seed=7)
        assert result.counts == reference.counts


class TestModelResults:
    def test_roundtrip_and_int_keys(self, cache):
        results = {3: 0.25, 17: 0.0, 4: 1.0}
        store_model_results(cache, "k" * 64, results)
        assert load_model_results(cache, "k" * 64) == results

    def test_bind_warms_and_writes_back(self, cache, pathfinder):
        module, profile, _outputs = pathfinder
        cold = build_model("trident", module, profile)
        assert bind_model_results(cache, cold, "trident") == 0
        cold_map = cold.sdc_map()  # triggers the write-back sink

        warm = build_model("trident", module, profile)
        restored = bind_model_results(cache, warm, "trident")
        assert restored == len(cold_map) > 0
        assert warm.sdc_map() == cold_map

    def test_key_separates_models_and_extras(self, pathfinder):
        module, profile, _outputs = pathfinder
        model = build_model("trident", module, profile)
        base = model_results_key(module, profile, "trident", model.config)
        assert base == model_results_key(
            module, profile, "trident", model.config
        )
        assert base != model_results_key(
            module, profile, "fs", model.config
        )
        assert base != model_results_key(
            module, profile, "trident", model.config, extra=0.125
        )


class TestCampaignArtifacts:
    def test_result_roundtrip(self):
        result = CampaignResult()
        result.counts[SDC] = 7
        result.counts["benign"] = 13
        result.cpu_seconds = 1.5
        result.runs_requested = 20
        result.rounds = 2
        restored = CampaignResult.from_dict(result.to_dict())
        assert restored.counts == result.counts
        assert restored.from_cache
        assert restored.cpu_seconds == 1.5
        assert restored.runs_requested == 20
        assert restored.wall_seconds == 0.0

    def test_unknown_outcome_rejected(self):
        data = CampaignResult().to_dict()
        data["counts"]["mystery"] = 1
        with pytest.raises(ValueError, match="unknown campaign outcome"):
            CampaignResult.from_dict(data)

    def test_key_ignores_parallelism_without_stopping_rule(self):
        fp = "a" * 64
        assert campaign_key(fp, 100, 0, round_size=50) == \
            campaign_key(fp, 100, 0, round_size=200)
        assert campaign_key(fp, 100, 0) != campaign_key(fp, 101, 0)
        assert campaign_key(fp, 100, 0) != campaign_key(fp, 100, 1)

    def test_key_honours_stopping_rule_knobs(self):
        fp = "a" * 64
        base = campaign_key(fp, 100, 0, ci_halfwidth=0.01, round_size=50)
        assert base == campaign_key(fp, 100, 0, ci_halfwidth=0.01,
                                    round_size=50)
        assert base != campaign_key(fp, 100, 0, ci_halfwidth=0.01,
                                    round_size=200)
        assert base != campaign_key(fp, 100, 0, ci_halfwidth=0.02,
                                    round_size=50)
        assert base != campaign_key(fp, 100, 0)

    def test_all_outcomes_serialized(self):
        data = CampaignResult().to_dict()
        assert set(data["counts"]) == set(OUTCOMES)
