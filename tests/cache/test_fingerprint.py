"""Module fingerprints: stable across rebuilds, sensitive to content."""

from __future__ import annotations

import pytest

from repro.bench import build_module
from repro.cache import combine_key, config_digest, module_fingerprint
from repro.core.config import trident_config
from repro.ir.instructions import BinOp
from tests.conftest import build_accumulator_module


class TestModuleFingerprint:
    def test_stable_across_rebuilds(self):
        a = build_accumulator_module()
        b = build_accumulator_module()
        assert a is not b
        assert module_fingerprint(a) == module_fingerprint(b)

    def test_benchmark_rebuild_is_stable(self):
        a = build_module("pathfinder", "test")
        b = build_module("pathfinder", "test")
        assert module_fingerprint(a) == module_fingerprint(b)

    def test_sensitive_to_content(self):
        small = build_accumulator_module(8)
        large = build_accumulator_module(16)
        assert module_fingerprint(small) != module_fingerprint(large)

    def test_sensitive_to_scale_and_benchmark(self):
        fingerprints = {
            module_fingerprint(build_module("pathfinder", "test")),
            module_fingerprint(build_module("pathfinder", "small")),
            module_fingerprint(build_module("hotspot", "test")),
        }
        assert len(fingerprints) == 3

    def test_memo_does_not_go_stale_after_mutation(self):
        module = build_accumulator_module()
        before = module_fingerprint(module)
        binop = next(
            i for i in module.instructions()
            if isinstance(i, BinOp) and i.op == "add"
        )
        binop.op = "sub"
        module.finalize()
        after = module_fingerprint(module)
        assert after != before

    def test_noop_refinalize_keeps_fingerprint(self):
        module = build_accumulator_module()
        before = module_fingerprint(module)
        module.finalize()
        assert module_fingerprint(module) == before


class TestConfigDigest:
    def test_dataclass_digest_is_stable(self):
        assert config_digest(trident_config()) == \
            config_digest(trident_config())

    def test_dict_key_order_is_irrelevant(self):
        assert config_digest({"a": 1, "b": 2}) == \
            config_digest({"b": 2, "a": 1})

    def test_rejects_arbitrary_objects(self):
        with pytest.raises(TypeError):
            config_digest(object())


class TestCombineKey:
    def test_none_is_distinct_from_zero_and_empty(self):
        keys = {combine_key("k", None), combine_key("k", 0),
                combine_key("k", "")}
        assert len(keys) == 3

    def test_order_sensitive(self):
        assert combine_key("a", "b") != combine_key("b", "a")
