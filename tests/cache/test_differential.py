"""Cold-vs-warm differentials: a warm run is bit-identical and faster.

The acceptance bar of the cache PR: re-running fig5 against a populated
cache must render byte-for-byte the same report while skipping the
expensive work (profiling runs, injections, model inference).
"""

from __future__ import annotations

import time

import pytest

from repro.cache import get_cache
from repro.fi.parallel import (
    CampaignSettings,
    ModuleSpec,
    run_cached_campaign,
)
from repro.harness.context import ExperimentConfig, Workspace
from repro.harness.fig5 import run_fig5

SMALL = ExperimentConfig(
    scale="test", fi_samples=120, model_samples=120,
    benchmarks=("pathfinder", "hotspot"),
)


@pytest.mark.usefixtures("fresh_default_cache")
class TestFig5Differential:
    def test_warm_rerun_is_bit_identical_and_faster(self):
        started = time.perf_counter()
        cold = run_fig5(Workspace(SMALL)).render()
        cold_seconds = time.perf_counter() - started

        stats = get_cache().stats
        hits_before = stats.hits

        started = time.perf_counter()
        warm = run_fig5(Workspace(SMALL)).render()
        warm_seconds = time.perf_counter() - started

        assert warm == cold
        assert stats.hits > hits_before  # profiles/goldens/models/campaigns
        # The ISSUE acceptance bar is >=2x; a warm run only reads JSON, so
        # this holds with a wide margin on any machine.
        assert warm_seconds < cold_seconds / 2

    def test_campaign_artifacts_are_replayed(self):
        run_fig5(Workspace(SMALL))
        workspace = Workspace(SMALL)
        campaign = workspace.context("pathfinder").fi_campaign()
        assert campaign.from_cache
        assert campaign.total == SMALL.fi_samples


@pytest.mark.usefixtures("fresh_default_cache")
class TestCachedCampaign:
    SPEC = ModuleSpec.from_benchmark("pathfinder", "test")

    def test_miss_then_hit_bit_identical(self):
        first = run_cached_campaign(60, seed=3, spec=self.SPEC)
        assert not first.from_cache
        second = run_cached_campaign(60, seed=3, spec=self.SPEC)
        assert second.from_cache
        assert second.counts == first.counts
        assert second.cpu_seconds == first.cpu_seconds

    def test_different_seed_misses(self):
        run_cached_campaign(60, seed=3, spec=self.SPEC)
        other = run_cached_campaign(60, seed=4, spec=self.SPEC)
        assert not other.from_cache

    def test_corrupt_entry_recomputes(self):
        from repro.cache import campaign_key, module_fingerprint
        from repro.cache.artifacts import CAMPAIGN_KIND

        first = run_cached_campaign(60, seed=3, spec=self.SPEC)
        cache = get_cache()
        key = campaign_key(
            module_fingerprint(self.SPEC.materialize()), 60, 3,
        )
        cache.store(CAMPAIGN_KIND, key, {"counts": {"sdc": "NaN?"},
                                         "malformed": True})
        again = run_cached_campaign(60, seed=3, spec=self.SPEC)
        assert not again.from_cache
        assert again.counts == first.counts
        # ... and the recomputation repaired the entry.
        repaired = run_cached_campaign(60, seed=3, spec=self.SPEC)
        assert repaired.from_cache

    def test_lazy_injector_factory_not_built_on_hit(self):
        run_cached_campaign(60, seed=3, spec=self.SPEC)
        built = []

        def factory():
            built.append(True)
            raise AssertionError("factory must not run on a cache hit")

        result = run_cached_campaign(
            60, seed=3, module=self.SPEC.materialize(), injector=factory,
            settings=CampaignSettings(),
        )
        assert result.from_cache and not built
