"""AnalysisManager: sharing, hit counting, fingerprint invalidation."""

from __future__ import annotations

import pytest

from repro.analysis.controldep import ControlDependence
from repro.cache import AnalysisManager, analysis_manager_for
from repro.ir.instructions import BinOp
from tests.conftest import build_accumulator_module


@pytest.fixture
def module():
    return build_accumulator_module()


@pytest.fixture
def main(module):
    return module.functions["main"]


class TestCaching:
    def test_second_get_returns_same_object(self, module, main):
        manager = AnalysisManager(module)
        first = manager.control_dependence(main)
        second = manager.control_dependence(main)
        assert isinstance(first, ControlDependence)
        assert first is second
        assert manager.misses == 1 and manager.hits == 1

    def test_kinds_are_independent(self, module, main):
        manager = AnalysisManager(module)
        manager.loop_info(main)
        manager.postdominators(main)
        manager.dominators(main)
        assert manager.misses == 3 and manager.hits == 0

    def test_unknown_kind_raises(self, module, main):
        with pytest.raises(KeyError, match="unknown analysis"):
            AnalysisManager(module).get("does-not-exist", main)

    def test_shared_manager_per_module(self, module):
        assert analysis_manager_for(module) is analysis_manager_for(module)
        other = build_accumulator_module()
        assert analysis_manager_for(other) is not analysis_manager_for(module)


class TestInvalidation:
    def _mutate(self, module) -> None:
        binop = next(
            i for i in module.instructions()
            if isinstance(i, BinOp) and i.op == "add"
        )
        binop.op = "sub"
        module.finalize()

    def test_mutation_invalidates(self, module, main):
        manager = analysis_manager_for(module)
        before = manager.control_dependence(main)
        old_fingerprint = manager.fingerprint
        self._mutate(module)
        assert manager.fingerprint != old_fingerprint
        after = manager.control_dependence(main)
        assert after is not before
        assert manager.invalidations == 1

    def test_noop_refinalize_keeps_entries(self, module, main):
        manager = analysis_manager_for(module)
        before = manager.postdominators(main)
        module.finalize()  # bumps revision, identical IR
        assert manager.postdominators(main) is before
        assert manager.invalidations == 0

    def test_manual_invalidate(self, module, main):
        manager = AnalysisManager(module)
        before = manager.loop_info(main)
        manager.invalidate()
        assert manager.loop_info(main) is not before
