"""Disk layer: roundtrips, corruption fallback, resolution, counters."""

from __future__ import annotations

import json

from repro.cache import (
    CACHE_DIR_ENV,
    configure_cache,
    get_cache,
    resolve_cache_dir,
)
from repro.cache.disk import SCHEMA_VERSION

KEY = "ab" + "0" * 62


class TestRoundtrip:
    def test_store_then_load(self, cache):
        payload = {"answer": 42, "values": [1.5, None, "x"]}
        assert cache.store("profile", KEY, payload)
        assert cache.load("profile", KEY) == payload

    def test_missing_entry_is_a_miss(self, cache):
        assert cache.load("profile", KEY) is None
        assert cache.stats.misses == 1
        assert cache.stats.hits == 0

    def test_sharded_layout(self, cache):
        cache.store("golden", KEY, {})
        path = cache.path_for("golden", KEY)
        assert path == cache.root / "golden" / "ab" / f"{KEY}.json"
        assert path.is_file()

    def test_no_temp_files_left_behind(self, cache):
        for i in range(5):
            cache.store("model", f"{i:064x}", {"i": i})
        leftovers = [p for p in cache.root.rglob("*.tmp")]
        assert leftovers == []


class TestCorruptionFallback:
    def _poison(self, cache, data: bytes) -> None:
        path = cache.path_for("profile", KEY)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(data)

    def test_garbage_is_dropped_and_missed(self, cache):
        self._poison(cache, b"not json at all{{{")
        assert cache.load("profile", KEY) is None
        assert cache.stats.evictions == 1
        assert not cache.path_for("profile", KEY).exists()

    def test_truncated_file_is_dropped(self, cache):
        cache.store("profile", KEY, {"big": list(range(100))})
        path = cache.path_for("profile", KEY)
        path.write_bytes(path.read_bytes()[:20])
        assert cache.load("profile", KEY) is None
        assert not path.exists()

    def test_schema_mismatch_is_a_miss(self, cache):
        self._poison(cache, json.dumps({
            "schema": SCHEMA_VERSION + 1, "kind": "profile",
            "key": KEY, "payload": {},
        }).encode())
        assert cache.load("profile", KEY) is None

    def test_kind_and_key_must_match(self, cache):
        cache.store("profile", KEY, {"v": 1})
        path = cache.path_for("profile", KEY)
        moved = cache.path_for("golden", KEY)
        moved.parent.mkdir(parents=True, exist_ok=True)
        moved.write_bytes(path.read_bytes())
        assert cache.load("golden", KEY) is None  # kind mismatch

    def test_recompute_overwrites_after_eviction(self, cache):
        self._poison(cache, b"junk")
        assert cache.load("profile", KEY) is None
        assert cache.store("profile", KEY, {"v": 2})
        assert cache.load("profile", KEY) == {"v": 2}


class TestDisabledCache:
    def test_null_cache_never_touches_disk(self, tmp_path):
        cache = configure_cache(tmp_path / "c", enabled=False)
        try:
            assert not cache.enabled
            assert not cache.store("profile", KEY, {"v": 1})
            assert cache.load("profile", KEY) is None
            assert not (tmp_path / "c").exists()
        finally:
            configure_cache(None)

    def test_configure_cache_replaces_process_default(self, tmp_path):
        cache = configure_cache(tmp_path / "c")
        try:
            assert get_cache() is cache
            assert cache.root == tmp_path / "c"
        finally:
            configure_cache(None)


class TestResolution:
    def test_explicit_wins(self, tmp_path):
        assert resolve_cache_dir(tmp_path / "x") == tmp_path / "x"

    def test_env_var_is_second(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "from-env"))
        assert resolve_cache_dir() == tmp_path / "from-env"
        assert resolve_cache_dir(tmp_path / "x") == tmp_path / "x"

    def test_default_is_repro_cache(self, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        assert str(resolve_cache_dir()) == ".repro-cache"


class TestStats:
    def test_counters_and_summary(self, cache):
        cache.store("profile", KEY, {"v": 1})
        cache.load("profile", KEY)
        cache.load("profile", "cd" + "0" * 62)
        stats = cache.stats
        assert stats.hits == 1 and stats.misses == 1 and stats.writes == 1
        assert stats.bytes_read > 0 and stats.bytes_written > 0
        assert stats.by_kind["profile"] == [1, 1]
        summary = stats.summary()
        assert "1 hit" in summary and "1 miss" in summary

    def test_unwritable_root_store_returns_false(self, cache, monkeypatch):
        def refuse(*_args, **_kwargs):
            raise OSError("read-only filesystem")

        monkeypatch.setattr("repro.cache.disk.tempfile.mkstemp", refuse)
        assert not cache.store("profile", KEY, {"v": 1})
        assert cache.stats.writes == 0
