"""End-to-end tests of the campaign service daemon over real HTTP.

A :class:`ServiceDaemon` binds an ephemeral port on a background event
loop; a blocking :class:`ServiceClient` drives it exactly the way
``repro submit``/``repro status`` do.  The contracts under test are the
service-mode acceptance criteria: a submitted campaign's counts are
bit-identical to the in-process CLI path, a repeat submit is served
from the shared result store without executing a trial, and protocol
errors surface as typed HTTP statuses (400/404/429), never hangs.
"""

from __future__ import annotations

import asyncio
import io
import threading

import pytest

from repro.fi import FaultInjector
from repro.fi.parallel import run_cached_campaign
from repro.ir.printer import print_module
from repro.serve import ServiceClient, ServiceDaemon, ServiceError
from tests.conftest import build_straightline_module, cached_module

BENCH = "pathfinder"
RUNS = 60
SEED = 93


class DaemonHarness:
    """One daemon on a background event loop + a client bound to it."""

    def __init__(self, **daemon_kwargs):
        daemon_kwargs.setdefault("host", "127.0.0.1")
        daemon_kwargs.setdefault("port", 0)
        daemon_kwargs.setdefault("log", io.StringIO())
        self.daemon = ServiceDaemon(**daemon_kwargs)
        self.loop = asyncio.new_event_loop()
        started = threading.Event()

        def _run():
            asyncio.set_event_loop(self.loop)
            self.loop.run_until_complete(self.daemon.start())
            started.set()
            self.loop.run_forever()

        self.thread = threading.Thread(
            target=_run, name="serve-test", daemon=True
        )
        self.thread.start()
        assert started.wait(timeout=30.0), "daemon failed to start"
        self.client = ServiceClient(
            self.daemon.host, self.daemon.port, timeout=120.0
        )

    def close(self):
        asyncio.run_coroutine_threadsafe(
            self.daemon.stop(), self.loop
        ).result(timeout=10.0)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10.0)
        self.loop.close()


@pytest.fixture(scope="module")
def harness():
    h = DaemonHarness()
    yield h
    h.close()


@pytest.fixture(scope="module")
def client(harness) -> ServiceClient:
    return harness.client


def campaign_payload(runs=RUNS, seed=SEED, **extra) -> dict:
    payload = {"benchmark": BENCH, "scale": "test",
               "runs": runs, "seed": seed}
    payload.update(extra)
    return payload


class TestProtocol:
    def test_health(self, client):
        body = client.health()
        assert body["status"] == "ok"
        assert body["protocol"] == 1

    def test_unknown_path_is_404(self, client):
        with pytest.raises(ServiceError) as exc:
            client._request("GET", "/no-such-route")
        assert exc.value.status == 404

    def test_wrong_method_is_405(self, client):
        with pytest.raises(ServiceError) as exc:
            client._request("GET", "/campaigns")
        assert exc.value.status == 405

    def test_malformed_body_is_400(self, client):
        with pytest.raises(ServiceError) as exc:
            client.submit({"runs": 10})  # names no module
        assert exc.value.status == 400
        with pytest.raises(ServiceError) as exc:
            client.submit(campaign_payload(runs="many"))
        assert exc.value.status == 400

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServiceError) as exc:
            client.job("job-999999")
        assert exc.value.status == 404


class TestCampaigns:
    def test_submit_matches_inprocess_cli_path(self, client):
        serial = FaultInjector(cached_module(BENCH)).campaign(
            RUNS, seed=SEED
        )
        job = client.submit(campaign_payload(), wait=True)
        assert job["status"] == "done"
        assert job["result"]["counts"] == serial.counts

    def test_repeat_submit_served_from_store(self, client):
        job = client.submit(campaign_payload(), wait=True)
        assert job["status"] == "done"
        assert job["cached"]  # store hit at admission: no queue slot
        assert job["result"]["from_cache"]

    def test_cli_computed_campaign_serves_submits(self, client):
        # The reverse direction: repro inject writes the store entry,
        # the daemon replays it.
        spec_runs, spec_seed = 44, 94
        from repro.sched import ModuleSpec
        computed = run_cached_campaign(
            spec_runs, seed=spec_seed,
            spec=ModuleSpec.from_benchmark(BENCH, "test"),
        )
        assert not computed.from_cache
        job = client.submit(
            campaign_payload(runs=spec_runs, seed=spec_seed), wait=True
        )
        assert job["cached"]
        assert job["result"]["counts"] == computed.counts

    def test_ir_text_module_roundtrips(self, client):
        module = build_straightline_module()
        serial = FaultInjector(module).campaign(30, seed=5)
        job = client.submit(
            {"ir_text": print_module(module), "runs": 30, "seed": 5},
            wait=True,
        )
        assert job["status"] == "done"
        assert job["result"]["counts"] == serial.counts

    def test_job_endpoint_returns_submitted_job(self, client):
        job = client.submit(campaign_payload(), wait=True)
        fetched = client.job(job["job_id"])
        assert fetched["status"] == "done"
        assert fetched["result"]["counts"] == job["result"]["counts"]
        listing = client.jobs()
        assert any(j["job_id"] == job["job_id"]
                   for j in listing["jobs"])

    def test_stats_exposes_scheduler_and_store(self, client):
        stats = client.stats()
        assert stats["counters"]["submitted"] >= 1
        assert stats["counters"]["cache_hits"] >= 1
        assert "counters" in stats["store"]
        assert "partial_shards_written" in stats["store"]["counters"]


class TestAnalyze:
    def test_model_prediction_over_http(self, client):
        body = client.analyze(
            {"benchmark": BENCH, "scale": "test",
             "model": "trident", "samples": 200}
        )
        assert 0.0 <= body["overall_sdc"] <= 1.0
        assert 0.0 <= body["overall_crash"] <= 1.0
        assert len(body["fingerprint"]) == 64

    def test_unknown_model_is_400(self, client):
        with pytest.raises(ServiceError) as exc:
            client.analyze({"benchmark": BENCH, "model": "oracle"})
        assert exc.value.status == 400


class TestBackpressure:
    def test_full_queue_answers_429(self):
        harness = DaemonHarness(max_pending=1)
        try:
            # Pause the dispatcher so admitted jobs stay queued, filling
            # the single slot deterministically.
            harness.daemon.scheduler.pause(timeout=5.0)
            first = harness.client.submit(campaign_payload(seed=95))
            assert first["status"] == "queued"
            with pytest.raises(ServiceError) as exc:
                harness.client.submit(campaign_payload(seed=96))
            assert exc.value.status == 429
        finally:
            harness.close()
