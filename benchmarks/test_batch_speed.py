"""Batch-tier campaign throughput: the nightly BENCH_batch_tier lane.

Runs >=1000-run cold FI campaigns on every registered benchmark, batch
tier (64 lanes, plus a 256-lane probe on the compute-dense subset)
against the codegen tier, asserting bit-identical counts and recording
per-benchmark speedups into ``benchmarks/results/batch_speed.json`` and
the repo-root ``BENCH_batch_tier.json`` trend artifact.

The numbers are reported honestly: the compute-dense subset (hotspot,
sad, blackscholes, lulesh) must hold a geomean well above the CI bar,
and each benchmark carries a ``target_3x`` flag marking whether it
reached the 3x aspiration.  Branch-dominated programs (pathfinder,
libquantum) used to sit near 1x on the peel-and-drain path; with SIMT
reconvergence (DESIGN.md §12) they stay in lockstep through divergent
branches, and this lane gates the best of the pair at >1.5x while
tracking both speedups and their re-merge/drain counters in the trend
artifact.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.bench import BENCHMARK_NAMES
from repro.fi import FaultInjector, ModuleSpec
from repro.interp import TIER_BATCH, TIER_CODEGEN
from repro.interp.batch import HAVE_NUMPY

RESULTS_DIR = Path(__file__).parent / "results"

#: Straight-line-arithmetic-heavy programs where lockstep execution
#: amortizes; the geomean gate applies to these only.
DENSE = ("hotspot", "sad", "blackscholes", "lulesh")

#: Branch-dominated programs whose throughput rides on reconvergence
#: keeping divergent lanes in lockstep; the best of the pair is gated
#: at >1.5x (libquantum's divergent-address loads cap its ceiling).
BRANCHY = ("pathfinder", "libquantum")


def _campaign_seconds(module, tier, runs, lanes=0):
    # Best-of-three: a single cold shot is hostage to whatever else the
    # box is doing (hypervisor steal arrives in multi-second episodes),
    # and the gates below compare ratios of these.
    best = None
    for _ in range(3):
        injector = FaultInjector(
            module, interp_tier=tier, checkpoint=False, batch_lanes=lanes
        )
        started = time.perf_counter()
        result = injector.run_span(0, runs, 1)
        wall = time.perf_counter() - started
        if best is None or wall < best:
            best = wall
    return result, best


@pytest.mark.slow
@pytest.mark.skipif(not HAVE_NUMPY, reason="batch tier requires numpy")
def test_batch_campaign_throughput():
    runs = int(os.environ.get("REPRO_BATCH_BENCH_RUNS", 1000))
    report = {"runs": runs, "lanes": 64, "benchmarks": {}}
    dense_speedups = []
    branchy_speedups = {}
    for name in BENCHMARK_NAMES:
        module = ModuleSpec.from_benchmark(name, "test").materialize()
        codegen_result, codegen_wall = _campaign_seconds(
            module, TIER_CODEGEN, runs
        )
        batch_result, batch_wall = _campaign_seconds(
            module, TIER_BATCH, runs, lanes=64
        )
        assert batch_result.counts == codegen_result.counts
        assert batch_result.batch_fallbacks == 0
        speedup = codegen_wall / batch_wall
        entry = {
            "codegen_wall_seconds": round(codegen_wall, 4),
            "batch_wall_seconds": round(batch_wall, 4),
            "speedup": round(speedup, 3),
            "divergences": batch_result.batch_divergences,
            "reconverged": batch_result.batch_reconverged,
            "drains": batch_result.batch_drains,
            "drain_fraction": round(batch_result.drain_fraction, 4),
            "gated": name in DENSE or name in BRANCHY,
            "target_3x": speedup >= 3.0,
        }
        if name in BRANCHY:
            branchy_speedups[name] = speedup
        if name in DENSE:
            # A wider-lane probe: divergence-light programs keep gaining
            # past 64 lanes, and the trend lane should show by how much.
            wide_result, wide_wall = _campaign_seconds(
                module, TIER_BATCH, runs, lanes=256
            )
            assert wide_result.counts == codegen_result.counts
            entry["speedup_256_lanes"] = round(codegen_wall / wide_wall, 3)
            entry["target_3x"] = entry["target_3x"] or (
                entry["speedup_256_lanes"] >= 3.0
            )
            dense_speedups.append(max(speedup, codegen_wall / wide_wall))
        report["benchmarks"][name] = entry

    geomean = 1.0
    for value in dense_speedups:
        geomean *= value
    geomean **= 1.0 / len(dense_speedups)
    report["dense_geomean_speedup"] = round(geomean, 3)
    report["dense_benchmarks"] = list(DENSE)
    report["branchy_benchmarks"] = list(BRANCHY)
    report["branchy_speedups"] = {
        name: round(value, 3) for name, value in branchy_speedups.items()
    }

    RESULTS_DIR.mkdir(exist_ok=True)
    payload = json.dumps(report, indent=2) + "\n"
    (RESULTS_DIR / "batch_speed.json").write_text(payload)
    (Path(__file__).resolve().parents[1]
     / "BENCH_batch_tier.json").write_text(payload)

    assert geomean >= 2.5, report
    assert max(branchy_speedups.values()) > 1.5, report
