"""Regenerates Fig. 9: overall SDC — FI vs TRIDENT vs ePVF vs PVF.

Expected shape (paper MAEs: TRIDENT 4.75%, ePVF 36.78%, PVF 75.19%):
PVF saturates near 100%, ePVF over-predicts, TRIDENT tracks FI.
"""

from conftest import publish

from repro.harness import run_fig9


def test_fig9(benchmark, workspace):
    result = benchmark.pedantic(
        run_fig9, args=(workspace,), iterations=1, rounds=1,
    )
    publish("fig9", result.render())
    maes = result.mean_absolute_errors
    assert maes["trident"] < maes["epvf"] < maes["pvf"]
