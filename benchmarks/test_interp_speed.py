"""Interpreter-tier microbenchmark: golden-run and campaign throughput.

Records per-benchmark golden-run throughput (dynamic instructions per
second) for the closure and codegen tiers into
``benchmarks/results/interp_speed.json``, and a >=1000-run campaign
comparison into the repo root (``BENCH_interp_codegen.json``) for the
nightly trend lane.  Counts and outputs must stay bit-identical — only
wall-clock may differ — so the benchmark doubles as one more
differential.  The 2x bar applies to the best benchmark, matching the
CI differential (small programs are dominated by fixed per-run costs).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.bench import BENCHMARK_NAMES
from repro.fi import FaultInjector, ModuleSpec
from repro.interp import TIER_CLOSURE, TIER_CODEGEN, ExecutionEngine

RESULTS_DIR = Path(__file__).parent / "results"


def _best_golden(engine: ExecutionEngine, repeats: int = 5):
    """(best wall seconds, dynamic count) over ``repeats`` golden runs."""
    best, dynamic = float("inf"), 0
    for _ in range(repeats):
        started = time.perf_counter()
        dynamic = engine.run().dynamic_count
        best = min(best, time.perf_counter() - started)
    return best, dynamic


@pytest.mark.slow
def test_golden_run_throughput_both_tiers():
    report = {"benchmarks": {}}
    speedups = []
    for name in BENCHMARK_NAMES:
        module = ModuleSpec.from_benchmark(name, "test").materialize()
        closure = ExecutionEngine(module, tier=TIER_CLOSURE)
        codegen = ExecutionEngine(module, tier=TIER_CODEGEN)
        assert codegen.codegen_fallbacks == 0
        assert closure.run().outputs == codegen.run().outputs
        closure_seconds, dynamic = _best_golden(closure)
        codegen_seconds, _ = _best_golden(codegen)
        speedup = closure_seconds / codegen_seconds
        speedups.append(speedup)
        report["benchmarks"][name] = {
            "dynamic_instructions": dynamic,
            "closure_seconds": round(closure_seconds, 6),
            "codegen_seconds": round(codegen_seconds, 6),
            "closure_instr_per_second": round(dynamic / closure_seconds),
            "codegen_instr_per_second": round(dynamic / codegen_seconds),
            "speedup": round(speedup, 3),
        }

    RESULTS_DIR.mkdir(exist_ok=True)
    payload = json.dumps(report, indent=2) + "\n"
    (RESULTS_DIR / "interp_speed.json").write_text(payload)

    assert max(speedups) >= 2.0, speedups


@pytest.mark.slow
def test_campaign_throughput_both_tiers():
    """>=1000-run campaigns per tier: identical counts, dynamic-instr/s
    recorded for the nightly BENCH_interp_codegen.json artifact."""
    runs = int(os.environ.get("REPRO_INTERP_BENCH_RUNS", 1000))
    report = {"runs": runs, "benchmarks": {}}
    speedups = []
    for name in ("pathfinder", "hotspot"):
        module = ModuleSpec.from_benchmark(name, "test").materialize()
        per_tier = {}
        for tier in (TIER_CLOSURE, TIER_CODEGEN):
            injector = FaultInjector(module, interp_tier=tier)
            started = time.perf_counter()
            result = injector.run_span(0, runs, 1)
            wall = time.perf_counter() - started
            per_tier[tier] = (result, wall)
        closure_result, closure_wall = per_tier[TIER_CLOSURE]
        codegen_result, codegen_wall = per_tier[TIER_CODEGEN]

        assert codegen_result.counts == closure_result.counts
        assert codegen_result.codegen_fallbacks == 0
        speedup = closure_wall / codegen_wall
        speedups.append(speedup)
        report["benchmarks"][name] = {
            "closure_wall_seconds": round(closure_wall, 4),
            "codegen_wall_seconds": round(codegen_wall, 4),
            "speedup": round(speedup, 3),
            "closure_instr_per_second": round(
                closure_result.instructions_per_second
            ),
            "codegen_instr_per_second": round(
                codegen_result.instructions_per_second
            ),
            "codegen_functions": codegen_result.codegen_functions,
        }

    RESULTS_DIR.mkdir(exist_ok=True)
    payload = json.dumps(report, indent=2) + "\n"
    (RESULTS_DIR / "interp_campaign.json").write_text(payload)
    (Path(__file__).resolve().parents[1]
     / "BENCH_interp_codegen.json").write_text(payload)

    assert max(speedups) > 1.1, speedups
