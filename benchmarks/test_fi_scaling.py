"""FI scaling smoke: parallelism and checkpointing must beat cold serial.

Counts must stay bit-identical while only wall-clock changes — the
whole point of the seed protocol and of checkpoint-and-fork.  The pool
test is skipped on single-CPU machines, where a pool can only add
overhead; the >= 2x speedup bars apply when the resources they need
are available.  The slow checkpoint benchmark writes machine-readable
results to ``benchmarks/results/fi_checkpoint.json`` and the repo root
(``BENCH_fi_checkpoint.json``) for trend tracking.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.fi import FaultInjector, ModuleSpec, run_parallel_campaign

CPUS = os.cpu_count() or 1
RESULTS_DIR = Path(__file__).parent / "results"


@pytest.mark.skipif(CPUS < 2, reason="parallel speedup needs >= 2 CPUs")
def test_parallel_beats_serial_wall_clock():
    runs = int(os.environ.get("REPRO_SCALING_RUNS", 2000 if CPUS >= 4 else 500))
    workers = 4 if CPUS >= 4 else 2
    spec = ModuleSpec.from_benchmark("blackscholes", "test")
    injector = FaultInjector(spec.materialize())

    started = time.perf_counter()
    serial = injector.campaign(runs, seed=1)
    serial_wall = time.perf_counter() - started

    parallel = run_parallel_campaign(
        runs, seed=1, spec=spec, workers=workers,
    )

    assert parallel.counts == serial.counts
    assert not parallel.degraded
    assert parallel.wall_seconds < serial_wall
    if CPUS >= 4:
        speedup = serial_wall / parallel.wall_seconds
        assert speedup >= 2.0, (
            f"4-worker campaign only {speedup:.2f}x faster "
            f"({serial_wall:.2f}s serial vs {parallel.wall_seconds:.2f}s)"
        )


@pytest.mark.slow
def test_checkpoint_beats_cold_runs():
    """>= 1000-run campaigns: checkpointing keeps counts and >= 2x speed."""
    runs = int(os.environ.get("REPRO_CHECKPOINT_RUNS", 1000))
    report = {"runs": runs, "benchmarks": {}}
    speedups = []
    for name in ("pathfinder", "hotspot"):
        module = ModuleSpec.from_benchmark(name, "test").materialize()
        cold = FaultInjector(module, checkpoint=False)
        started = time.perf_counter()
        cold_result = cold.run_span(0, runs, 1)
        cold_wall = time.perf_counter() - started

        warm = FaultInjector(module, checkpoint=True)
        started = time.perf_counter()
        warm_result = warm.run_span(0, runs, 1)
        warm_wall = time.perf_counter() - started

        assert warm_result.counts == cold_result.counts
        assert warm_result.checkpointed
        assert not warm_result.checkpoint_degraded
        speedup = cold_wall / warm_wall
        speedups.append(speedup)
        report["benchmarks"][name] = {
            "cold_wall_seconds": round(cold_wall, 4),
            "checkpoint_wall_seconds": round(warm_wall, 4),
            "speedup": round(speedup, 3),
            "dynamic_instructions": warm_result.dynamic_instructions,
            "skipped_instructions": warm_result.skipped_instructions,
            "snapshot_bytes": warm_result.snapshot_bytes,
            "instructions_per_second": round(
                warm_result.instructions_per_second
            ),
        }

    RESULTS_DIR.mkdir(exist_ok=True)
    payload = json.dumps(report, indent=2) + "\n"
    (RESULTS_DIR / "fi_checkpoint.json").write_text(payload)
    (Path(__file__).resolve().parents[1]
     / "BENCH_fi_checkpoint.json").write_text(payload)

    assert max(speedups) >= 2.0, speedups
