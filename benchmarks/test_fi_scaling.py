"""FI scaling smoke: a parallel campaign must beat serial wall-clock.

Counts must stay bit-identical while only wall-clock changes — the
whole point of the seed protocol.  Skipped on single-CPU machines,
where a pool can only add overhead; the >= 2x speedup bar applies when
4 real cores are available.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.fi import FaultInjector, ModuleSpec, run_parallel_campaign

CPUS = os.cpu_count() or 1


@pytest.mark.skipif(CPUS < 2, reason="parallel speedup needs >= 2 CPUs")
def test_parallel_beats_serial_wall_clock():
    runs = int(os.environ.get("REPRO_SCALING_RUNS", 2000 if CPUS >= 4 else 500))
    workers = 4 if CPUS >= 4 else 2
    spec = ModuleSpec.from_benchmark("blackscholes", "test")
    injector = FaultInjector(spec.materialize())

    started = time.perf_counter()
    serial = injector.campaign(runs, seed=1)
    serial_wall = time.perf_counter() - started

    parallel = run_parallel_campaign(
        runs, seed=1, spec=spec, workers=workers,
    )

    assert parallel.counts == serial.counts
    assert not parallel.degraded
    assert parallel.wall_seconds < serial_wall
    if CPUS >= 4:
        speedup = serial_wall / parallel.wall_seconds
        assert speedup >= 2.0, (
            f"4-worker campaign only {speedup:.2f}x faster "
            f"({serial_wall:.2f}s serial vs {parallel.wall_seconds:.2f}s)"
        )
