"""Regenerates Table II: per-instruction p-values (paired t-tests).

Expected shape (paper: 3/11 rejections for TRIDENT vs 9/11 and 7/11 for
the simpler models): TRIDENT's per-instruction predictions are the
least distinguishable from FI among the models with control-flow
modeling enabled.
"""

from conftest import publish

from repro.harness import run_table2


def test_table2(benchmark, workspace):
    result = benchmark.pedantic(
        run_table2, args=(workspace,), iterations=1, rounds=1,
    )
    publish("table2", result.render())
    assert result.rejections["trident"] <= result.rejections["fs+fc"]
    for row in result.rows:
        for p_value in row.p_values.values():
            assert 0.0 <= p_value <= 1.0
