"""Shared fixtures for the benchmark harness.

Each ``test_*`` file regenerates one table or figure of the paper.  The
default configuration covers all 11 benchmarks at "test" scale with
moderate FI sample counts so the whole harness completes in minutes;
set the environment variables below for a fuller (slower) run:

    REPRO_SCALE=small|default   benchmark input scale
    REPRO_FI_SAMPLES=3000       FI samples per program (paper: 3000)
    REPRO_PER_INST_RUNS=100     FI runs per instruction (paper: 100)
    REPRO_FI_WORKERS=4          worker processes for FI campaigns
    REPRO_FI_CI_HALFWIDTH=0.01  stop campaigns at this Wilson 95% CI
                                half-width on the SDC probability
    REPRO_FI_CHECKPOINT=0       disable checkpoint-and-fork FI trials
                                (default on; counts are identical)
    REPRO_FI_CHECKPOINT_STRIDE=500
                                dynamic instructions between golden
                                snapshots (0 = auto)
    REPRO_INTERP_TIER=closure   interpreter execution tier (codegen,
                                closure, or batch; default codegen —
                                outcomes are bit-identical on every tier)
    REPRO_BATCH_LANES=64        trials per lockstep group on the batch
                                tier (0 = tier default; a wall-clock
                                knob only — counts are identical for
                                any lane count)
    REPRO_CACHE_DIR=.repro-cache
                                artifact-cache root (CI restores this
                                across runs); unset = .repro-cache/

Campaign counts are bit-identical for any REPRO_FI_WORKERS value;
REPRO_FI_CI_HALFWIDTH trades sample count for wall-clock, and a warm
artifact cache replays profiles/campaigns/model results bit-identically.

Rendered reports are printed (visible with ``-s``) and written to
``benchmarks/results/``.
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path

import pytest

from repro.bench import BENCHMARK_NAMES
from repro.cache import configure_cache
from repro.core.env import env_choice, env_flag, env_float, env_int, env_str
from repro.harness import ExperimentConfig, Workspace
from repro.interp.codegen import TIERS

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session", autouse=True)
def _artifact_cache():
    """Honor $REPRO_CACHE_DIR explicitly (CI restores that directory
    between runs, so warm reruns replay cached artifacts)."""
    configure_cache(env_str("REPRO_CACHE_DIR"))


def harness_config() -> ExperimentConfig:
    return ExperimentConfig(
        scale=env_choice("REPRO_SCALE", "test",
                         ("test", "small", "default", "large")),
        fi_samples=env_int("REPRO_FI_SAMPLES", 400, minimum=1),
        model_samples=env_int("REPRO_FI_SAMPLES", 400, minimum=1),
        per_instruction_runs=env_int("REPRO_PER_INST_RUNS", 25, minimum=1),
        max_instructions=env_int("REPRO_MAX_INSTRUCTIONS", 60, minimum=1),
        protection_fi_samples=env_int("REPRO_PROTECTION_SAMPLES", 300,
                                      minimum=1),
        benchmarks=BENCHMARK_NAMES,
        fi_workers=env_int("REPRO_FI_WORKERS", 1, minimum=1),
        fi_ci_halfwidth=env_float("REPRO_FI_CI_HALFWIDTH", None, minimum=0.0),
        fi_checkpoint=env_flag("REPRO_FI_CHECKPOINT", True),
        fi_checkpoint_stride=env_int("REPRO_FI_CHECKPOINT_STRIDE", 0,
                                     minimum=0),
        interp_tier=env_choice("REPRO_INTERP_TIER", None, TIERS),
        batch_lanes=env_int("REPRO_BATCH_LANES", 0, minimum=0),
    )


@pytest.fixture(scope="session")
def workspace() -> Workspace:
    return Workspace(harness_config())


@pytest.fixture(scope="session")
def fig8_workspace() -> Workspace:
    """Fig. 8 runs 6 protected FI campaigns per program; keep it to a
    representative subset by default (REPRO_FIG8_ALL=1 for all 11)."""
    config = harness_config()
    if not env_flag("REPRO_FIG8_ALL", False):
        config = replace(
            config, benchmarks=("pathfinder", "hotspot", "nw", "bfs_parboil")
        )
    return Workspace(config)


def publish(name: str, rendered: str) -> None:
    """Print a report and persist it under benchmarks/results/."""
    print()
    print(rendered)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(rendered + "\n")
