"""Shared fixtures for the benchmark harness.

Each ``test_*`` file regenerates one table or figure of the paper.  The
default configuration covers all 11 benchmarks at "test" scale with
moderate FI sample counts so the whole harness completes in minutes;
set the environment variables below for a fuller (slower) run:

    REPRO_SCALE=small|default   benchmark input scale
    REPRO_FI_SAMPLES=3000       FI samples per program (paper: 3000)
    REPRO_PER_INST_RUNS=100     FI runs per instruction (paper: 100)
    REPRO_FI_WORKERS=4          worker processes for FI campaigns
    REPRO_FI_CI_HALFWIDTH=0.01  stop campaigns at this Wilson 95% CI
                                half-width on the SDC probability
    REPRO_FI_CHECKPOINT=0       disable checkpoint-and-fork FI trials
                                (default on; counts are identical)
    REPRO_FI_CHECKPOINT_STRIDE=500
                                dynamic instructions between golden
                                snapshots (0 = auto)
    REPRO_INTERP_TIER=closure   interpreter execution tier (codegen,
                                closure, or batch; default codegen —
                                outcomes are bit-identical on every tier)
    REPRO_BATCH_LANES=64        trials per lockstep group on the batch
                                tier (0 = tier default; a wall-clock
                                knob only — counts are identical for
                                any lane count)
    REPRO_CACHE_DIR=.repro-cache
                                artifact-cache root (CI restores this
                                across runs); unset = .repro-cache/

Campaign counts are bit-identical for any REPRO_FI_WORKERS value;
REPRO_FI_CI_HALFWIDTH trades sample count for wall-clock, and a warm
artifact cache replays profiles/campaigns/model results bit-identically.

Rendered reports are printed (visible with ``-s``) and written to
``benchmarks/results/``.
"""

from __future__ import annotations

import os
from dataclasses import replace
from pathlib import Path

import pytest

from repro.bench import BENCHMARK_NAMES
from repro.cache import configure_cache
from repro.harness import ExperimentConfig, Workspace

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session", autouse=True)
def _artifact_cache():
    """Honor $REPRO_CACHE_DIR explicitly (CI restores that directory
    between runs, so warm reruns replay cached artifacts)."""
    configure_cache(os.environ.get("REPRO_CACHE_DIR"))


def _int_env(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


def _flag_env(name: str, default: bool) -> bool:
    value = os.environ.get(name)
    if value is None:
        return default
    return value.strip().lower() not in ("0", "false", "no", "off", "")


def harness_config() -> ExperimentConfig:
    halfwidth = os.environ.get("REPRO_FI_CI_HALFWIDTH")
    return ExperimentConfig(
        scale=os.environ.get("REPRO_SCALE", "test"),
        fi_samples=_int_env("REPRO_FI_SAMPLES", 400),
        model_samples=_int_env("REPRO_FI_SAMPLES", 400),
        per_instruction_runs=_int_env("REPRO_PER_INST_RUNS", 25),
        max_instructions=_int_env("REPRO_MAX_INSTRUCTIONS", 60),
        protection_fi_samples=_int_env("REPRO_PROTECTION_SAMPLES", 300),
        benchmarks=BENCHMARK_NAMES,
        fi_workers=_int_env("REPRO_FI_WORKERS", 1),
        fi_ci_halfwidth=float(halfwidth) if halfwidth else None,
        fi_checkpoint=_flag_env("REPRO_FI_CHECKPOINT", True),
        fi_checkpoint_stride=_int_env("REPRO_FI_CHECKPOINT_STRIDE", 0),
        interp_tier=os.environ.get("REPRO_INTERP_TIER") or None,
        batch_lanes=_int_env("REPRO_BATCH_LANES", 0),
    )


@pytest.fixture(scope="session")
def workspace() -> Workspace:
    return Workspace(harness_config())


@pytest.fixture(scope="session")
def fig8_workspace() -> Workspace:
    """Fig. 8 runs 6 protected FI campaigns per program; keep it to a
    representative subset by default (REPRO_FIG8_ALL=1 for all 11)."""
    config = harness_config()
    if not os.environ.get("REPRO_FIG8_ALL"):
        config = replace(
            config, benchmarks=("pathfinder", "hotspot", "nw", "bfs_parboil")
        )
    return Workspace(config)


def publish(name: str, rendered: str) -> None:
    """Print a report and persist it under benchmarks/results/."""
    print()
    print(rendered)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(rendered + "\n")
