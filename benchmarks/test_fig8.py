"""Regenerates Fig. 8: SDC reduction from selective duplication at 1/3
and 2/3 of the full-duplication overhead, for all three models.

Expected shape (paper: 64%/64%/40% at the low budget, 90%/87%/74% at
the high): TRIDENT >= fs+fc > fs, and the high budget dominates.
"""

from conftest import publish

from repro.harness import OVERHEAD_LEVELS, run_fig8


def test_fig8(benchmark, fig8_workspace):
    result = benchmark.pedantic(
        run_fig8, args=(fig8_workspace,), iterations=1, rounds=1,
    )
    publish("fig8", result.render())
    low, high = OVERHEAD_LEVELS
    reductions = result.average_reduction
    assert reductions[("trident", low)] >= reductions[("fs", low)] - 0.05
    assert reductions[("trident", high)] >= reductions[("trident", low)] - 0.05
    assert reductions[("trident", high)] > 0.5
