"""Regenerates Fig. 5: overall SDC — FI vs TRIDENT vs fs+fc vs fs.

Expected shape (paper: FI 13.59%, TRIDENT 14.83%, fs+fc 33.85%,
fs 23.76%): TRIDENT tracks FI; both simpler models drift far higher.
"""

from conftest import publish

from repro.harness import run_fig5


def test_fig5(benchmark, workspace):
    result = benchmark.pedantic(
        run_fig5, args=(workspace,), iterations=1, rounds=1,
    )
    publish("fig5", result.render())
    errors = result.mean_absolute_errors
    assert errors["trident"] < errors["fs+fc"]
    assert errors["trident"] < errors["fs"]
    assert result.means["fs+fc"] > result.means["trident"]
