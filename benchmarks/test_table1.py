"""Regenerates Table I: characteristics of the benchmarks."""

from conftest import publish

from repro.harness import run_table1


def test_table1(benchmark, workspace):
    result = benchmark.pedantic(
        run_table1, args=(workspace,), iterations=1, rounds=1,
    )
    publish("table1", result.render())
    assert len(result.rows) == len(workspace.config.benchmarks)
    for row in result.rows:
        assert row.dynamic_instructions > row.static_instructions
