"""Input-sensitivity bench (the paper's future work, Sec. VII-B):
SDC probabilities move across program inputs; TRIDENT, rebuilt per
input, must track the per-input values."""


from conftest import harness_config, publish

from repro.harness import ExperimentConfig, Workspace
from repro.harness.inputs import run_input_sensitivity


def test_input_sensitivity(benchmark):
    base = harness_config()
    config = ExperimentConfig(
        scale=base.scale,
        fi_samples=base.fi_samples,
        model_samples=base.model_samples,
        per_instruction_runs=base.per_instruction_runs,
        max_instructions=base.max_instructions,
        protection_fi_samples=base.protection_fi_samples,
        benchmarks=("pathfinder", "nw", "bfs_parboil", "hotspot"),
    )
    workspace = Workspace(config)
    result = benchmark.pedantic(
        run_input_sensitivity, args=(workspace,),
        kwargs={"inputs": 3}, iterations=1, rounds=1,
    )
    publish("inputs", result.render())
    # SDC probability is input-dependent (Di Leo et al.): at least one
    # benchmark must show a visible spread.
    assert any(row.fi_spread > 0.02 for row in result.rows)
    # The per-input model error stays in the same band as the
    # single-input experiments.
    avg_mae = sum(r.per_input_mae for r in result.rows) / len(result.rows)
    assert avg_mae < 0.25
