"""Optimization-level bench (extension): SDC at -O0 memory form vs
-O2 SSA register form, measured by FI and predicted by TRIDENT."""

from conftest import harness_config, publish

from repro.harness import ExperimentConfig, Workspace
from repro.harness.optlevels import run_optlevels


def test_optlevels(benchmark):
    base = harness_config()
    config = ExperimentConfig(
        scale=base.scale,
        fi_samples=base.fi_samples,
        model_samples=base.model_samples,
        benchmarks=("pathfinder", "nw", "hotspot", "libquantum"),
    )
    workspace = Workspace(config)
    result = benchmark.pedantic(
        run_optlevels, args=(workspace,), iterations=1, rounds=1,
    )
    publish("optlevels", result.render())
    for row in result.rows:
        # mem2reg must shrink the dynamic instruction count...
        assert row.dynamic_counts[2] < row.dynamic_counts[0]
        assert row.promoted > 0
    # ...and the model must stay usable on both forms.
    assert result.mae[0] < 0.2
    assert result.mae[2] < 0.3
