"""Regenerates Fig. 6: computation spent to predict SDC probabilities.

Expected shape: FI time linear in samples (6a) and in instruction count
(6b); TRIDENT near-flat in both (paper: 2.37x faster at 1000 samples,
15.13x at 7000).
"""

from conftest import publish

from repro.harness import run_fig6


def test_fig6(benchmark, workspace):
    result = benchmark.pedantic(
        run_fig6, args=(workspace,), iterations=1, rounds=1,
    )
    publish("fig6", result.render())
    fi = result.series_a.fi_seconds
    trident = result.series_a.trident_seconds
    assert fi[-1] / fi[0] > 10      # linear growth over 500 -> 7000
    assert trident[-1] < trident[0] * 4  # near-flat
    index_3000 = result.series_a.samples.index(3000)
    assert fi[index_3000] > trident[index_3000]
