"""Regenerates Fig. 7: per-benchmark time for all per-instruction SDC
probabilities (TRIDENT vs FI-100) plus memory-dependency pruning rates
(paper average: 61.87% pruned)."""

from conftest import publish

from repro.harness import run_fig7


def test_fig7(benchmark, workspace):
    result = benchmark.pedantic(
        run_fig7, args=(workspace,), iterations=1, rounds=1,
    )
    publish("fig7", result.render())
    for row in result.rows:
        assert row.fi100_seconds > row.trident_seconds
    assert result.average_pruned_fraction > 0.3
