"""Ablation bench: the design choices DESIGN.md §5 calls out, plus the
paper's optional extensions (Sec. VII-A) and the crash-prediction
extension, each measured as overall-SDC MAE against FI."""

from conftest import publish

from repro.harness.ablations import run_ablations


def test_ablations(benchmark, workspace):
    result = benchmark.pedantic(
        run_ablations, args=(workspace,), iterations=1, rounds=1,
    )
    publish("ablations", result.render())
    maes = result.mean_absolute_errors
    # The shipped configuration must not be worse than dropping either
    # design choice (allow noise).
    assert maes["full"] <= maes["no-minmax-joint"] + 0.03
    assert maes["full"] <= maes["no-silent-discount"] + 0.03
    # The crash-prediction extension must track FI crash rates.
    assert result.crash_mae < 0.15
